//! Data partitioning for write scalability (Fig. 2): range, hash, and list
//! partitioning on a per-table key column, plus the statement analysis that
//! routes a statement to its partition(s).

use replimid_sql::ast::{BinOp, Expr, InsertSource, Statement};
use replimid_sql::Value;

/// Partitioning criterion for one table (§2.1: "range partitioning, list
/// partitioning and hash partitioning" on a primary key).
#[derive(Debug, Clone, PartialEq)]
pub enum PartitionScheme {
    /// `bounds[i]` is the *exclusive* upper bound of partition i; values at
    /// or above the last bound go to the final partition (len = bounds+1).
    Range { column: String, bounds: Vec<i64> },
    /// Hash of the key value modulo `partitions`.
    Hash { column: String, partitions: usize },
    /// Explicit value lists; values not listed go to partition
    /// `default_partition`.
    List { column: String, lists: Vec<Vec<Value>>, default_partition: usize },
}

impl PartitionScheme {
    pub fn partition_count(&self) -> usize {
        match self {
            PartitionScheme::Range { bounds, .. } => bounds.len() + 1,
            PartitionScheme::Hash { partitions, .. } => *partitions,
            PartitionScheme::List { lists, default_partition, .. } => {
                lists.len().max(default_partition + 1)
            }
        }
    }

    pub fn column(&self) -> &str {
        match self {
            PartitionScheme::Range { column, .. }
            | PartitionScheme::Hash { column, .. }
            | PartitionScheme::List { column, .. } => column,
        }
    }

    /// Which partition owns `value`?
    pub fn locate(&self, value: &Value) -> usize {
        match self {
            PartitionScheme::Range { bounds, .. } => {
                let v = value.as_int().unwrap_or(i64::MAX);
                bounds.iter().position(|&b| v < b).unwrap_or(bounds.len())
            }
            PartitionScheme::Hash { partitions, .. } => {
                let mut h = replimid_sql::checksum::Fnv64::new();
                value.hash_into(&mut h);
                (h.finish() % *partitions as u64) as usize
            }
            PartitionScheme::List { lists, default_partition, .. } => lists
                .iter()
                .position(|l| l.contains(value))
                .unwrap_or(*default_partition),
        }
    }
}

/// The partition map of a cluster: table name -> scheme. Tables not listed
/// are *global* (replicated everywhere).
#[derive(Debug, Clone, Default)]
pub struct Partitioner {
    schemes: Vec<(String, PartitionScheme)>,
}

/// Where a statement must run.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum Route {
    /// One specific partition.
    Single(usize),
    /// Every partition (scatter; e.g. a scan without a key predicate, DDL,
    /// or a global table write).
    All,
}

impl Partitioner {
    pub fn new() -> Self {
        Self::default()
    }

    pub fn add_table(&mut self, table: &str, scheme: PartitionScheme) {
        self.schemes.push((table.to_string(), scheme));
    }

    pub fn scheme_for(&self, table: &str) -> Option<&PartitionScheme> {
        self.schemes
            .iter()
            .find(|(t, _)| t == table)
            .map(|(_, s)| s)
    }

    pub fn partition_count(&self) -> usize {
        self.schemes
            .iter()
            .map(|(_, s)| s.partition_count())
            .max()
            .unwrap_or(1)
    }

    /// Decide where `stmt` must execute. Conservative: anything without an
    /// extractable equality on the partition key goes everywhere.
    pub fn route(&self, stmt: &Statement) -> Route {
        match stmt {
            Statement::Insert { table, columns, source } => {
                let Some(scheme) = self.scheme_for(&table.name) else {
                    return Route::All;
                };
                let InsertSource::Values(rows) = source else { return Route::All };
                let mut target: Option<usize> = None;
                for row in rows {
                    let idx = if columns.is_empty() {
                        // Positional: the partition column's schema position
                        // is unknown here; require named columns.
                        return Route::All;
                    } else {
                        match columns.iter().position(|c| c == scheme.column()) {
                            Some(i) => i,
                            None => return Route::All,
                        }
                    };
                    let Some(Expr::Literal(v)) = row.get(idx) else { return Route::All };
                    let p = scheme.locate(v);
                    match target {
                        None => target = Some(p),
                        Some(t) if t == p => {}
                        _ => return Route::All, // multi-partition insert
                    }
                }
                target.map(Route::Single).unwrap_or(Route::All)
            }
            Statement::Update { table, filter, .. } | Statement::Delete { table, filter } => {
                match self.scheme_for(&table.name) {
                    None => Route::All,
                    Some(scheme) => filter
                        .as_ref()
                        .and_then(|f| extract_eq(f, scheme.column()))
                        .map(|v| Route::Single(scheme.locate(&v)))
                        .unwrap_or(Route::All),
                }
            }
            Statement::Select(s) => {
                // Single-table selects with a key equality route to one
                // partition; everything else scatters (intra-query
                // parallelism across partitions, §2.1).
                let mut tables = Vec::new();
                replimid_sql::ast::collect_select_tables(s, &mut tables);
                if tables.len() != 1 {
                    return Route::All;
                }
                match self.scheme_for(&tables[0].name) {
                    None => Route::All,
                    Some(scheme) => s
                        .filter
                        .as_ref()
                        .and_then(|f| extract_eq(f, scheme.column()))
                        .map(|v| Route::Single(scheme.locate(&v)))
                        .unwrap_or(Route::All),
                }
            }
            _ => Route::All,
        }
    }
}

/// Find a top-level (AND-combined) `column = literal` predicate.
fn extract_eq(filter: &Expr, column: &str) -> Option<Value> {
    match filter {
        Expr::Binary { left, op: BinOp::Eq, right } => {
            if let (Expr::Column(c), Expr::Literal(v)) = (left.as_ref(), right.as_ref()) {
                if c.name == column {
                    return Some(v.clone());
                }
            }
            if let (Expr::Literal(v), Expr::Column(c)) = (left.as_ref(), right.as_ref()) {
                if c.name == column {
                    return Some(v.clone());
                }
            }
            None
        }
        Expr::Binary { left, op: BinOp::And, right } => {
            extract_eq(left, column).or_else(|| extract_eq(right, column))
        }
        _ => None,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use replimid_sql::parse_statement;

    fn range_partitioner() -> Partitioner {
        let mut p = Partitioner::new();
        p.add_table(
            "orders",
            PartitionScheme::Range { column: "id".into(), bounds: vec![100, 200] },
        );
        p
    }

    #[test]
    fn range_locate() {
        let s = PartitionScheme::Range { column: "id".into(), bounds: vec![100, 200] };
        assert_eq!(s.partition_count(), 3);
        assert_eq!(s.locate(&Value::Int(5)), 0);
        assert_eq!(s.locate(&Value::Int(100)), 1);
        assert_eq!(s.locate(&Value::Int(500)), 2);
    }

    #[test]
    fn hash_is_stable_and_in_range() {
        let s = PartitionScheme::Hash { column: "id".into(), partitions: 4 };
        for i in 0..100 {
            let p = s.locate(&Value::Int(i));
            assert!(p < 4);
            assert_eq!(p, s.locate(&Value::Int(i)), "stable");
        }
    }

    #[test]
    fn list_locate_with_default() {
        let s = PartitionScheme::List {
            column: "region".into(),
            lists: vec![
                vec![Value::Text("eu".into())],
                vec![Value::Text("us".into())],
            ],
            default_partition: 1,
        };
        assert_eq!(s.locate(&Value::Text("eu".into())), 0);
        assert_eq!(s.locate(&Value::Text("jp".into())), 1);
    }

    #[test]
    fn routes_by_statement_shape() {
        let p = range_partitioner();
        let route = |sql: &str| p.route(&parse_statement(sql).unwrap());
        assert_eq!(route("INSERT INTO orders (id, v) VALUES (50, 1)"), Route::Single(0));
        assert_eq!(route("INSERT INTO orders (id, v) VALUES (150, 1), (199, 2)"), Route::Single(1));
        assert_eq!(route("INSERT INTO orders (id, v) VALUES (50, 1), (150, 2)"), Route::All);
        assert_eq!(route("UPDATE orders SET v = 2 WHERE id = 250 AND v > 0"), Route::Single(2));
        assert_eq!(route("UPDATE orders SET v = 2 WHERE v > 0"), Route::All);
        assert_eq!(route("SELECT * FROM orders WHERE id = 10"), Route::Single(0));
        assert_eq!(route("SELECT COUNT(*) FROM orders"), Route::All);
        assert_eq!(route("INSERT INTO other (id) VALUES (1)"), Route::All, "global table");
        assert_eq!(route("DELETE FROM orders WHERE id = 100"), Route::Single(1));
    }
}
