//! Data partitioning for write scalability (Fig. 2): range, hash, and list
//! partitioning on a per-table key column, plus the statement analysis that
//! routes a statement to its partition(s).

use replimid_sql::ast::{BinOp, Expr, InsertSource, Statement};
use replimid_sql::Value;

/// Partitioning criterion for one table (§2.1: "range partitioning, list
/// partitioning and hash partitioning" on a primary key).
#[derive(Debug, Clone, PartialEq)]
pub enum PartitionScheme {
    /// `bounds[i]` is the *exclusive* upper bound of partition i; values at
    /// or above the last bound go to the final partition (len = bounds+1).
    Range { column: String, bounds: Vec<i64> },
    /// Hash of the key value modulo `partitions`.
    Hash { column: String, partitions: usize },
    /// Explicit value lists; values not listed go to partition
    /// `default_partition`.
    List { column: String, lists: Vec<Vec<Value>>, default_partition: usize },
}

impl PartitionScheme {
    pub fn partition_count(&self) -> usize {
        match self {
            PartitionScheme::Range { bounds, .. } => bounds.len() + 1,
            PartitionScheme::Hash { partitions, .. } => *partitions,
            PartitionScheme::List { lists, default_partition, .. } => {
                lists.len().max(default_partition + 1)
            }
        }
    }

    pub fn column(&self) -> &str {
        match self {
            PartitionScheme::Range { column, .. }
            | PartitionScheme::Hash { column, .. }
            | PartitionScheme::List { column, .. } => column,
        }
    }

    /// Which partition owns `value`?
    pub fn locate(&self, value: &Value) -> usize {
        match self {
            PartitionScheme::Range { bounds, .. } => {
                let v = value.as_int().unwrap_or(i64::MAX);
                bounds.iter().position(|&b| v < b).unwrap_or(bounds.len())
            }
            PartitionScheme::Hash { partitions, .. } => {
                let mut h = replimid_sql::checksum::Fnv64::new();
                value.hash_into(&mut h);
                (h.finish() % *partitions as u64) as usize
            }
            PartitionScheme::List { lists, default_partition, .. } => lists
                .iter()
                .position(|l| l.contains(value))
                .unwrap_or(*default_partition),
        }
    }
}

/// The partition map of a cluster: table name -> scheme. Tables not listed
/// are *global* (replicated everywhere).
#[derive(Debug, Clone, Default)]
pub struct Partitioner {
    schemes: Vec<(String, PartitionScheme)>,
}

/// Where a statement must run.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum Route {
    /// One specific partition.
    Single(usize),
    /// Every partition (scatter; e.g. a scan without a key predicate, DDL,
    /// or a global table write).
    All,
}

impl Partitioner {
    pub fn new() -> Self {
        Self::default()
    }

    pub fn add_table(&mut self, table: &str, scheme: PartitionScheme) {
        self.schemes.push((table.to_string(), scheme));
    }

    pub fn scheme_for(&self, table: &str) -> Option<&PartitionScheme> {
        self.schemes
            .iter()
            .find(|(t, _)| t == table)
            .map(|(_, s)| s)
    }

    pub fn partition_count(&self) -> usize {
        self.schemes
            .iter()
            .map(|(_, s)| s.partition_count())
            .max()
            .unwrap_or(1)
    }

    /// Decide where `stmt` must execute. Conservative: anything without an
    /// extractable equality on the partition key goes everywhere.
    pub fn route(&self, stmt: &Statement) -> Route {
        match stmt {
            Statement::Insert { table, columns, source } => {
                let Some(scheme) = self.scheme_for(&table.name) else {
                    return Route::All;
                };
                let InsertSource::Values(rows) = source else { return Route::All };
                let mut target: Option<usize> = None;
                for row in rows {
                    let idx = if columns.is_empty() {
                        // Positional: the partition column's schema position
                        // is unknown here; require named columns.
                        return Route::All;
                    } else {
                        match columns.iter().position(|c| c == scheme.column()) {
                            Some(i) => i,
                            None => return Route::All,
                        }
                    };
                    let Some(Expr::Literal(v)) = row.get(idx) else { return Route::All };
                    let p = scheme.locate(v);
                    match target {
                        None => target = Some(p),
                        Some(t) if t == p => {}
                        _ => return Route::All, // multi-partition insert
                    }
                }
                target.map(Route::Single).unwrap_or(Route::All)
            }
            Statement::Update { table, filter, .. } | Statement::Delete { table, filter } => {
                match self.scheme_for(&table.name) {
                    None => Route::All,
                    Some(scheme) => filter
                        .as_ref()
                        .and_then(|f| extract_eq(f, scheme.column()))
                        .map(|v| Route::Single(scheme.locate(&v)))
                        .unwrap_or(Route::All),
                }
            }
            Statement::Select(s) => {
                // Single-table selects with a key equality route to one
                // partition; everything else scatters (intra-query
                // parallelism across partitions, §2.1).
                let mut tables = Vec::new();
                replimid_sql::ast::collect_select_tables(s, &mut tables);
                if tables.len() != 1 {
                    return Route::All;
                }
                match self.scheme_for(&tables[0].name) {
                    None => Route::All,
                    Some(scheme) => s
                        .filter
                        .as_ref()
                        .and_then(|f| extract_eq(f, scheme.column()))
                        .map(|v| Route::Single(scheme.locate(&v)))
                        .unwrap_or(Route::All),
                }
            }
            _ => Route::All,
        }
    }
}

/// Per-table-group placement for partial replication (Sutra–Shapiro): each
/// table belongs to exactly one *group*, each group lives on a declared
/// subset of backends, and writes are ordered/certified/applied only among
/// the replicas that host the groups a transaction touches. Tables not
/// listed fall into `default_group` (conservative: the unlisted-table
/// escape hatch, like [`Partitioner`]'s global tables).
#[derive(Debug, Clone, PartialEq)]
pub struct Placement {
    /// `hosts[g]` = sorted backend indices hosting group `g`.
    hosts: Vec<Vec<usize>>,
    /// table name -> group index.
    tables: Vec<(String, usize)>,
    default_group: usize,
    /// Accept groups with a single host (see [`Self::allow_sole_host`]).
    allow_sole_host: bool,
}

impl Placement {
    /// One group per `hosts` entry; tables are assigned with
    /// [`assign`](Self::assign). Host lists are deduplicated and sorted so
    /// fan-out order is deterministic.
    pub fn new(hosts: Vec<Vec<usize>>) -> Self {
        assert!(!hosts.is_empty(), "placement needs at least one group");
        let hosts = hosts
            .into_iter()
            .map(|mut h| {
                h.sort_unstable();
                h.dedup();
                assert!(!h.is_empty(), "every group needs at least one host");
                h
            })
            .collect();
        Placement { hosts, tables: Vec::new(), default_group: 0, allow_sole_host: false }
    }

    /// Opt out of the sole-host rejection in [`Self::validate`]. A group
    /// with one replica has no resync donor once that host crashes — the
    /// rejoiner stays Down until an operator intervenes (the PR 9 recovery
    /// dead-end) — so single-host groups are a build-time error by
    /// default. Experiments that deliberately measure the 1-replica
    /// extreme (e.g. the E22 scaling ladder) set this explicitly.
    pub fn allow_sole_host(mut self) -> Self {
        self.allow_sole_host = true;
        self
    }

    /// The canonical scale-out layout: `groups` groups over `backends`
    /// replicas, group `g` hosted by backends `{g % backends, ...}` spread
    /// round-robin with `replicas` copies each.
    pub fn striped(groups: usize, backends: usize, replicas: usize) -> Self {
        let replicas = replicas.clamp(1, backends.max(1));
        let hosts = (0..groups)
            .map(|g| (0..replicas).map(|r| (g + r) % backends).collect())
            .collect();
        Placement::new(hosts)
    }

    pub fn assign(mut self, table: &str, group: usize) -> Self {
        assert!(group < self.hosts.len(), "group {group} out of range");
        self.tables.push((table.to_string(), group));
        self
    }

    pub fn with_default_group(mut self, group: usize) -> Self {
        assert!(group < self.hosts.len(), "group {group} out of range");
        self.default_group = group;
        self
    }

    pub fn groups(&self) -> usize {
        self.hosts.len()
    }

    /// Group that unlisted tables (and empty writesets) fall into.
    pub fn default_group(&self) -> usize {
        self.default_group
    }

    pub fn group_of(&self, table: &str) -> usize {
        self.tables
            .iter()
            .find(|(t, _)| t == table)
            .map(|&(_, g)| g)
            .unwrap_or(self.default_group)
    }

    pub fn hosts(&self, group: usize) -> &[usize] {
        &self.hosts[group]
    }

    pub fn hosts_table(&self, backend: usize, table: &str) -> bool {
        self.hosts[self.group_of(table)].contains(&backend)
    }

    /// Sorted, deduplicated group set a list of table names touches. An
    /// empty table list (e.g. a writeset with no entries) maps to the
    /// default group so every transaction has at least one sequencer.
    pub fn groups_of_tables<'a>(&self, tables: impl Iterator<Item = &'a str>) -> Vec<usize> {
        let mut gs: Vec<usize> = tables.map(|t| self.group_of(t)).collect();
        gs.sort_unstable();
        gs.dedup();
        if gs.is_empty() {
            gs.push(self.default_group);
        }
        gs
    }

    /// Backends hosting *every* group in `groups` (intersection, sorted).
    pub fn hosts_of_all(&self, groups: &[usize]) -> Vec<usize> {
        let mut it = groups.iter();
        let Some(&first) = it.next() else { return Vec::new() };
        let mut acc: Vec<usize> = self.hosts[first].clone();
        for &g in it {
            acc.retain(|b| self.hosts[g].contains(b));
        }
        acc
    }

    /// Trivial placements — one group hosted by every backend — carry no
    /// partial-replication information: the middleware normalizes them away
    /// and runs the exact global single-sequencer path, byte-for-byte.
    pub fn is_trivial(&self, backends: usize) -> bool {
        self.hosts.len() == 1 && self.hosts[0].len() == backends
    }

    /// Sanity-check against the actual backend count. Rejects groups with
    /// fewer than two hosts when the cluster could do better (see
    /// [`Self::allow_sole_host`]): a sole-host group cannot donate a
    /// resync after its only replica crashes, stranding the rejoiner.
    pub fn validate(&self, backends: usize) -> Result<(), String> {
        for (g, hs) in self.hosts.iter().enumerate() {
            for &b in hs {
                if b >= backends {
                    return Err(format!(
                        "group {g} host {b} out of range (cluster has {backends} backends)"
                    ));
                }
            }
            if hs.len() < 2 && backends >= 2 && !self.allow_sole_host {
                return Err(format!(
                    "group {g} has a single host (backend {}): a crash leaves no \
                     resync donor and the rejoiner is stranded; place >= 2 replicas \
                     or opt out with allow_sole_host()",
                    hs[0]
                ));
            }
        }
        Ok(())
    }
}

/// Find a top-level (AND-combined) `column = literal` predicate.
fn extract_eq(filter: &Expr, column: &str) -> Option<Value> {
    match filter {
        Expr::Binary { left, op: BinOp::Eq, right } => {
            if let (Expr::Column(c), Expr::Literal(v)) = (left.as_ref(), right.as_ref()) {
                if c.name == column {
                    return Some(v.clone());
                }
            }
            if let (Expr::Literal(v), Expr::Column(c)) = (left.as_ref(), right.as_ref()) {
                if c.name == column {
                    return Some(v.clone());
                }
            }
            None
        }
        Expr::Binary { left, op: BinOp::And, right } => {
            extract_eq(left, column).or_else(|| extract_eq(right, column))
        }
        _ => None,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use replimid_sql::parse_statement;

    fn range_partitioner() -> Partitioner {
        let mut p = Partitioner::new();
        p.add_table(
            "orders",
            PartitionScheme::Range { column: "id".into(), bounds: vec![100, 200] },
        );
        p
    }

    #[test]
    fn range_locate() {
        let s = PartitionScheme::Range { column: "id".into(), bounds: vec![100, 200] };
        assert_eq!(s.partition_count(), 3);
        assert_eq!(s.locate(&Value::Int(5)), 0);
        assert_eq!(s.locate(&Value::Int(100)), 1);
        assert_eq!(s.locate(&Value::Int(500)), 2);
    }

    #[test]
    fn hash_is_stable_and_in_range() {
        let s = PartitionScheme::Hash { column: "id".into(), partitions: 4 };
        for i in 0..100 {
            let p = s.locate(&Value::Int(i));
            assert!(p < 4);
            assert_eq!(p, s.locate(&Value::Int(i)), "stable");
        }
    }

    #[test]
    fn list_locate_with_default() {
        let s = PartitionScheme::List {
            column: "region".into(),
            lists: vec![
                vec![Value::Text("eu".into())],
                vec![Value::Text("us".into())],
            ],
            default_partition: 1,
        };
        assert_eq!(s.locate(&Value::Text("eu".into())), 0);
        assert_eq!(s.locate(&Value::Text("jp".into())), 1);
    }

    #[test]
    fn placement_groups_and_hosts() {
        let p = Placement::new(vec![vec![0, 1], vec![2, 3], vec![1, 2]])
            .assign("a", 0)
            .assign("b", 1)
            .assign("c", 2);
        assert_eq!(p.groups(), 3);
        assert_eq!(p.group_of("a"), 0);
        assert_eq!(p.group_of("unlisted"), 0, "default group");
        assert_eq!(p.groups_of_tables(["b", "a", "b"].into_iter()), vec![0, 1]);
        assert_eq!(p.groups_of_tables(std::iter::empty()), vec![0]);
        assert_eq!(p.hosts_of_all(&[0, 2]), vec![1]);
        assert_eq!(p.hosts_of_all(&[0, 1]), Vec::<usize>::new());
        assert!(p.hosts_table(3, "b") && !p.hosts_table(3, "a"));
        assert!(p.validate(4).is_ok());
        assert!(p.validate(3).is_err());
        assert!(!p.is_trivial(4));
        assert!(Placement::new(vec![vec![0, 1, 2]]).is_trivial(3));
    }

    #[test]
    fn striped_placement_spreads_hosts() {
        let p = Placement::striped(4, 4, 2);
        assert_eq!(p.hosts(0), &[0, 1]);
        assert_eq!(p.hosts(3), &[0, 3]);
        assert!(p.validate(4).is_ok());
    }

    #[test]
    fn sole_host_groups_rejected_unless_opted_out() {
        // Group 1 has one replica: its host crashing leaves no resync
        // donor, so validation refuses the layout by default.
        let sole = || Placement::new(vec![vec![0, 1], vec![2]]);
        let err = sole().validate(3).unwrap_err();
        assert!(err.contains("single host"), "unexpected error: {err}");
        assert!(sole().allow_sole_host().validate(3).is_ok());
        // A one-backend cluster cannot do better than one replica.
        assert!(Placement::new(vec![vec![0]]).validate(1).is_ok());
        // Range errors still dominate.
        assert!(Placement::new(vec![vec![0, 9]]).validate(3).is_err());
    }

    #[test]
    fn routes_by_statement_shape() {
        let p = range_partitioner();
        let route = |sql: &str| p.route(&parse_statement(sql).unwrap());
        assert_eq!(route("INSERT INTO orders (id, v) VALUES (50, 1)"), Route::Single(0));
        assert_eq!(route("INSERT INTO orders (id, v) VALUES (150, 1), (199, 2)"), Route::Single(1));
        assert_eq!(route("INSERT INTO orders (id, v) VALUES (50, 1), (150, 2)"), Route::All);
        assert_eq!(route("UPDATE orders SET v = 2 WHERE id = 250 AND v > 0"), Route::Single(2));
        assert_eq!(route("UPDATE orders SET v = 2 WHERE v > 0"), Route::All);
        assert_eq!(route("SELECT * FROM orders WHERE id = 10"), Route::Single(0));
        assert_eq!(route("SELECT COUNT(*) FROM orders"), Route::All);
        assert_eq!(route("INSERT INTO other (id) VALUES (1)"), Route::All, "global table");
        assert_eq!(route("DELETE FROM orders WHERE id = 100"), Route::Single(1));
    }
}
