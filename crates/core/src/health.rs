//! Per-backend latency health scoring and the quarantine state machine.
//!
//! Gray failures — brownouts, lossy NICs, overloaded disks — do not trip a
//! heartbeat failure detector: the backend still answers pings, just slowly
//! and erratically. The paper's practitioners handled this with operator
//! intervention; here the middleware scores each backend with an EWMA over
//! completed-operation latency and quarantines backends whose score degrades
//! far beyond their own baseline.
//!
//! The state machine is the classic circuit breaker adapted to read routing:
//!
//! ```text
//!   Healthy --(EWMA > trip_factor x baseline, sustained)--> Quarantined
//!   Quarantined --(min_quarantine_us elapsed)--> Probing   (half-open)
//!   Probing --(probe completes fast)--> Healthy            (rejoin)
//!   Probing --(probe slow or fails)--> Quarantined         (re-trip)
//! ```
//!
//! Quarantine only filters *read routing* and delegate selection; writes
//! still replicate to quarantined backends so they stay consistent and can
//! rejoin without a resync. Every transition is appended to an event log so
//! property tests can assert same-seed runs produce identical histories.

/// Quarantine policy knobs. All trips are relative to the backend's own
/// learned baseline, so a uniformly slow backend is not punished — only a
/// backend that got *worse*.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct QuarantineConfig {
    /// Smoothing for the fast (current-health) latency EWMA.
    pub ewma_alpha: f64,
    /// Smoothing for the slow baseline EWMA (learned while healthy).
    pub baseline_alpha: f64,
    /// Trip when the fast EWMA exceeds `trip_factor` x baseline...
    pub trip_factor: f64,
    /// ...for this many consecutive completions (debounce).
    pub trip_consecutive: u32,
    /// Ignore everything until this many completions have been scored.
    pub min_samples: u64,
    /// Dwell in Quarantined at least this long before the half-open probe.
    pub min_quarantine_us: u64,
    /// A probe completing slower than `trip_factor` x baseline re-trips.
    pub probe_timeout_us: u64,
}

impl Default for QuarantineConfig {
    fn default() -> Self {
        QuarantineConfig {
            ewma_alpha: 0.2,
            baseline_alpha: 0.02,
            trip_factor: 4.0,
            trip_consecutive: 3,
            min_samples: 10,
            min_quarantine_us: 500_000,
            probe_timeout_us: 1_000_000,
        }
    }
}

/// Where a backend sits in the circuit-breaker cycle.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum HealthState {
    Healthy,
    Quarantined { since_us: u64 },
    /// Half-open: eligible for exactly one probe read at a time.
    Probing { since_us: u64 },
}

/// One transition in the quarantine history (for metrics and replay checks).
#[derive(Debug, Clone, Copy, PartialEq)]
pub enum HealthEvent {
    Trip { ewma_us: f64, baseline_us: f64 },
    ProbeStart,
    Rejoin,
    Retrip,
    Reset,
}

/// Latency health score and quarantine state for a single backend.
#[derive(Debug, Clone)]
pub struct HealthTracker {
    cfg: QuarantineConfig,
    state: HealthState,
    ewma_us: f64,
    baseline_us: f64,
    samples: u64,
    over_threshold: u32,
    probe_in_flight: bool,
    events: Vec<(u64, HealthEvent)>,
}

impl HealthTracker {
    pub fn new(cfg: QuarantineConfig) -> Self {
        HealthTracker {
            cfg,
            state: HealthState::Healthy,
            ewma_us: 0.0,
            baseline_us: 0.0,
            samples: 0,
            over_threshold: 0,
            probe_in_flight: false,
            events: Vec::new(),
        }
    }

    pub fn state(&self) -> HealthState {
        self.state
    }

    /// True while the backend should be filtered out of read routing.
    /// Probing counts: the single designated probe is routed explicitly,
    /// not via the normal candidate set.
    pub fn quarantined(&self) -> bool {
        !matches!(self.state, HealthState::Healthy)
    }

    pub fn ewma_us(&self) -> f64 {
        self.ewma_us
    }

    pub fn baseline_us(&self) -> f64 {
        self.baseline_us
    }

    pub fn events(&self) -> &[(u64, HealthEvent)] {
        &self.events
    }

    /// Score one completed operation. Returns `true` if this completion
    /// tripped the breaker (Healthy -> Quarantined).
    pub fn on_completion(&mut self, now_us: u64, latency_us: u64) -> bool {
        let lat = latency_us as f64;
        self.samples += 1;
        if self.samples == 1 {
            self.ewma_us = lat;
            self.baseline_us = lat;
            return false;
        }
        self.ewma_us += self.cfg.ewma_alpha * (lat - self.ewma_us);
        // The baseline only learns from samples that look normal, so a
        // brownout cannot drag the reference point up underneath itself.
        if lat <= self.cfg.trip_factor * self.baseline_us {
            self.baseline_us += self.cfg.baseline_alpha * (lat - self.baseline_us);
        }
        if self.state != HealthState::Healthy || self.samples < self.cfg.min_samples {
            return false;
        }
        if self.ewma_us > self.cfg.trip_factor * self.baseline_us.max(1.0) {
            self.over_threshold += 1;
            if self.over_threshold >= self.cfg.trip_consecutive {
                self.state = HealthState::Quarantined { since_us: now_us };
                self.over_threshold = 0;
                self.events.push((
                    now_us,
                    HealthEvent::Trip { ewma_us: self.ewma_us, baseline_us: self.baseline_us },
                ));
                return true;
            }
        } else {
            self.over_threshold = 0;
        }
        false
    }

    /// Advance the dwell timer: Quarantined -> Probing once the minimum
    /// quarantine time has elapsed. Returns `true` on that transition.
    pub fn tick(&mut self, now_us: u64) -> bool {
        if let HealthState::Quarantined { since_us } = self.state {
            if now_us.saturating_sub(since_us) >= self.cfg.min_quarantine_us {
                self.state = HealthState::Probing { since_us: now_us };
                self.probe_in_flight = false;
                return true;
            }
        }
        false
    }

    /// True when this backend wants its single half-open probe routed.
    pub fn wants_probe(&self) -> bool {
        matches!(self.state, HealthState::Probing { .. }) && !self.probe_in_flight
    }

    /// The middleware routed the probe read; hold further probes until it
    /// resolves.
    pub fn probe_sent(&mut self, now_us: u64) {
        debug_assert!(matches!(self.state, HealthState::Probing { .. }));
        self.probe_in_flight = true;
        self.events.push((now_us, HealthEvent::ProbeStart));
    }

    /// The probe completed. Fast enough -> rejoin; slow -> back to
    /// Quarantined for another dwell period. Returns `true` on rejoin.
    pub fn probe_completed(&mut self, now_us: u64, latency_us: u64) -> bool {
        if !matches!(self.state, HealthState::Probing { .. }) {
            return false;
        }
        self.probe_in_flight = false;
        let ok = latency_us <= self.cfg.probe_timeout_us
            && (latency_us as f64) <= self.cfg.trip_factor * self.baseline_us.max(1.0);
        if ok {
            self.state = HealthState::Healthy;
            // Forget the brownout-era score so the next completion doesn't
            // instantly re-trip on stale history.
            self.ewma_us = self.baseline_us;
            self.over_threshold = 0;
            self.events.push((now_us, HealthEvent::Rejoin));
            true
        } else {
            self.state = HealthState::Quarantined { since_us: now_us };
            self.events.push((now_us, HealthEvent::Retrip));
            false
        }
    }

    /// The probe was lost entirely (backend failed mid-probe): treat as a
    /// failed probe.
    pub fn probe_lost(&mut self, now_us: u64) {
        if matches!(self.state, HealthState::Probing { .. }) {
            self.probe_in_flight = false;
            self.state = HealthState::Quarantined { since_us: now_us };
            self.events.push((now_us, HealthEvent::Retrip));
        }
    }

    /// Hard reset: the backend crashed or was evicted, so its latency
    /// history is meaningless when (if) it returns.
    pub fn reset(&mut self, now_us: u64) {
        if self.samples > 0 || self.quarantined() {
            self.events.push((now_us, HealthEvent::Reset));
        }
        self.state = HealthState::Healthy;
        self.ewma_us = 0.0;
        self.baseline_us = 0.0;
        self.samples = 0;
        self.over_threshold = 0;
        self.probe_in_flight = false;
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn cfg() -> QuarantineConfig {
        QuarantineConfig {
            min_samples: 5,
            trip_consecutive: 2,
            min_quarantine_us: 1_000,
            ..QuarantineConfig::default()
        }
    }

    #[test]
    fn steady_latency_never_trips() {
        let mut t = HealthTracker::new(cfg());
        for i in 0..200 {
            assert!(!t.on_completion(i * 100, 900 + (i % 7) * 30));
        }
        assert_eq!(t.state(), HealthState::Healthy);
        assert!(t.events().is_empty());
    }

    #[test]
    fn brownout_trips_then_probe_rejoins() {
        let mut t = HealthTracker::new(cfg());
        let mut now = 0u64;
        for _ in 0..20 {
            now += 100;
            t.on_completion(now, 1_000);
        }
        // 10x latency: the fast EWMA blows past 4x baseline within a few
        // completions while the outlier-gated baseline stays put.
        let mut tripped = false;
        for _ in 0..20 {
            now += 100;
            if t.on_completion(now, 10_000) {
                tripped = true;
                break;
            }
        }
        assert!(tripped);
        assert!(t.quarantined());
        assert!(matches!(t.events()[0].1, HealthEvent::Trip { .. }));

        // Dwell, then half-open.
        assert!(!t.tick(now + 10)); // too soon
        now += 2_000;
        assert!(t.tick(now));
        assert!(t.wants_probe());
        t.probe_sent(now);
        assert!(!t.wants_probe()); // one probe in flight max

        // Probe comes back at baseline speed: rejoin, score forgiven.
        assert!(t.probe_completed(now + 1_000, 1_000));
        assert_eq!(t.state(), HealthState::Healthy);
        assert!(!t.on_completion(now + 2_000, 1_000));
    }

    #[test]
    fn slow_probe_retrips() {
        let mut t = HealthTracker::new(cfg());
        let mut now = 0;
        for _ in 0..10 {
            now += 100;
            t.on_completion(now, 1_000);
        }
        for _ in 0..10 {
            now += 100;
            t.on_completion(now, 20_000);
        }
        assert!(t.quarantined());
        now += 2_000;
        t.tick(now);
        t.probe_sent(now);
        assert!(!t.probe_completed(now + 9_000, 9_000)); // still 9x baseline
        assert!(matches!(t.state(), HealthState::Quarantined { .. }));
        // And the dwell timer starts over.
        assert!(!t.tick(now + 9_500));
        assert!(t.tick(now + 9_000 + 1_000));
    }

    #[test]
    fn uniformly_slow_backend_is_not_punished() {
        // 20ms from the very first sample: that IS its baseline.
        let mut t = HealthTracker::new(cfg());
        for i in 0..100 {
            assert!(!t.on_completion(i * 100, 20_000));
        }
        assert_eq!(t.state(), HealthState::Healthy);
    }

    #[test]
    fn reset_wipes_history() {
        let mut t = HealthTracker::new(cfg());
        let mut now = 0;
        for _ in 0..10 {
            now += 100;
            t.on_completion(now, 1_000);
        }
        for _ in 0..10 {
            now += 100;
            t.on_completion(now, 30_000);
        }
        assert!(t.quarantined());
        t.reset(now);
        assert_eq!(t.state(), HealthState::Healthy);
        assert_eq!(t.ewma_us(), 0.0);
        // Fresh history: slow completions below min_samples don't trip.
        for _ in 0..3 {
            now += 100;
            assert!(!t.on_completion(now, 30_000));
        }
        assert!(matches!(t.events().last().unwrap().1, HealthEvent::Reset));
    }
}
