//! Wire protocol of the simulated cluster: client ↔ middleware ↔ database
//! nodes, plus the replication traffic between middleware peers.

use std::sync::Arc;

use replimid_gcs::GcsMsg;
use replimid_sql::ast::Statement;
use replimid_sql::{keycode, BinlogEntry, Dump, Lsn, ResultSet, SqlError, Value, Writeset};

/// A client session, globally unique across the cluster.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub struct SessionId(pub u64);

/// Index of a backend *within one middleware's* backend list.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub struct BackendId(pub usize);

/// What a client asks the middleware to do (one statement per request —
/// closed-loop clients).
#[derive(Debug, Clone)]
pub struct ClientRequest {
    pub session: SessionId,
    /// Monotonic per-session statement number: lets a middleware replica
    /// deduplicate retries after a failover (§4.3.3).
    pub stmt_seq: u64,
    /// The transaction trace this statement belongs to (latency
    /// attribution, see `trace::TraceSink`). 0 = untraced.
    pub trace: u64,
    pub sql: String,
}

/// Successful statement result, trimmed for the wire.
#[derive(Debug, Clone, PartialEq)]
pub enum ReplyBody {
    Rows(ResultSet),
    Affected(u64),
    Ack,
}

/// Why a request failed at the middleware.
#[derive(Debug, Clone, PartialEq)]
pub enum ReplyError {
    Sql(SqlError),
    /// No healthy backend / quorum lost: the outage the client perceives.
    Unavailable(String),
    /// The middleware refused the statement (e.g. unrewritable
    /// non-determinism under statement replication, §4.3.2).
    Rejected(String),
    /// Write quorum lost but reads still flow: the cluster degraded to
    /// read-only rather than going dark. Writes fail fast with this error
    /// so clients can back off and retry instead of hanging on a timeout.
    Degraded(String),
}

impl ReplyError {
    pub fn is_retryable(&self) -> bool {
        match self {
            ReplyError::Sql(e) => e.is_retryable(),
            ReplyError::Unavailable(_) => true,
            ReplyError::Rejected(_) => false,
            ReplyError::Degraded(_) => true,
        }
    }
}

#[derive(Debug, Clone)]
pub struct ClientReply {
    pub session: SessionId,
    pub stmt_seq: u64,
    pub result: Result<ReplyBody, ReplyError>,
}

/// Idempotence spaces for applied entries. A node tracks two independent
/// positions: the master's binlog LSN space (log shipping) and the
/// middleware's ordered-statement sequence space (total order + recovery
/// replay). They must never be conflated — binlog LSNs start past the
/// schema-load entries, ordered sequences start at 1.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum ApplySpace {
    /// No tracking (apply unconditionally).
    None,
    /// Master binlog LSNs: skip entries at or below `applied_lsn`.
    Binlog,
    /// Ordered replication-log sequence numbers: skip entries at or below
    /// the node's ordered-applied position.
    Ordered,
}

/// The prepared-statement wire format: a parsed template plus extracted
/// parameters. The middleware parses (or cache-hits) once at admission and
/// fans this out instead of SQL text, so backends skip their parser
/// entirely (`Engine::execute_prepared`). The template is shared by `Arc`:
/// one parse serves every backend of every fan-out.
#[derive(Debug, Clone)]
pub struct PlanExec {
    pub template: Arc<Statement>,
    /// Literals extracted by normalization, positionally matching the
    /// template's `Expr::Param` nodes. Empty when the template carries its
    /// literals inline (uncached / rewritten statements).
    pub params: Vec<Value>,
}

impl PlanExec {
    /// Wrap an already-complete statement (no parameters to bind).
    pub fn whole(stmt: Arc<Statement>) -> PlanExec {
        PlanExec { template: stmt, params: Vec::new() }
    }

    /// Reconstruct the executable statement.
    pub fn bind(&self) -> Result<Statement, SqlError> {
        if self.params.is_empty() {
            Ok((*self.template).clone())
        } else {
            replimid_sql::bind(&self.template, &self.params)
        }
    }

    /// Compact wire encoding: the template's canonical text (parameters
    /// render as `?`) plus keycode-encoded params. This is what would cross
    /// a real network — far smaller than a serialized AST, and the receiver
    /// still skips per-statement parsing by caching templates keyed on the
    /// template text (which IS the normalization key).
    pub fn encode(&self) -> Vec<u8> {
        let mut out = Vec::new();
        keycode::encode_str(&mut out, &self.template.to_string());
        keycode::encode_u64(&mut out, self.params.len() as u64);
        for v in &self.params {
            match v {
                Value::Null => out.push(0),
                Value::Int(i) => {
                    out.push(1);
                    keycode::encode_i64(&mut out, *i);
                }
                Value::Float(f) => {
                    out.push(2);
                    keycode::encode_u64(&mut out, f.to_bits());
                }
                Value::Text(s) => {
                    out.push(3);
                    keycode::encode_str(&mut out, s);
                }
                Value::Bool(b) => out.push(4 + *b as u8),
                Value::Timestamp(t) => {
                    out.push(6);
                    keycode::encode_i64(&mut out, *t);
                }
            }
        }
        out
    }

    pub fn decode(bytes: &[u8]) -> Result<PlanExec, String> {
        let e = |e: keycode::KeycodeError| format!("{e:?}");
        let (text, mut rest) = keycode::decode_str(bytes).map_err(e)?;
        let template =
            replimid_sql::parse_statement(&text).map_err(|err| format!("template: {err}"))?;
        let (n, r) = keycode::decode_u64(rest).map_err(e)?;
        rest = r;
        let mut params = Vec::with_capacity(n as usize);
        for _ in 0..n {
            let (&tag, r) = rest.split_first().ok_or("truncated param tag")?;
            rest = r;
            let v = match tag {
                0 => Value::Null,
                1 => {
                    let (i, r) = keycode::decode_i64(rest).map_err(e)?;
                    rest = r;
                    Value::Int(i)
                }
                2 => {
                    let (b, r) = keycode::decode_u64(rest).map_err(e)?;
                    rest = r;
                    Value::Float(f64::from_bits(b))
                }
                3 => {
                    let (s, r) = keycode::decode_str(rest).map_err(e)?;
                    rest = r;
                    Value::Text(s)
                }
                4 => Value::Bool(false),
                5 => Value::Bool(true),
                6 => {
                    let (i, r) = keycode::decode_i64(rest).map_err(e)?;
                    rest = r;
                    Value::Timestamp(i)
                }
                t => return Err(format!("bad param tag {t}")),
            };
            params.push(v);
        }
        Ok(PlanExec { template: Arc::new(template), params })
    }
}

/// Operations the middleware sends to a database node. `op` is a
/// correlation id echoed in the response.
#[derive(Debug, Clone)]
pub enum DbOp {
    /// Execute one SQL statement on the (lazily created) connection `conn`.
    /// `seq` is the replication-log position for totally-ordered writes:
    /// the node records it durably and *skips* statements it has already
    /// applied — this is what makes recovery replay idempotent when an
    /// acknowledgment raced a failure declaration (§4.4.2: "the middleware
    /// has often no information on which transactions committed prior to
    /// the failure; this information is only known to the database").
    Execute { op: u64, conn: u64, sql: String, seq: Option<u64> },
    /// Prepared-statement variant of `Execute`: the middleware already
    /// parsed (or cache-hit) the statement; the node binds params and runs
    /// `Engine::execute_prepared`, skipping its parser. Same idempotence
    /// contract (`seq`) and the same responses (`ExecOk`/`ExecErr`).
    ExecutePlan { op: u64, conn: u64, plan: PlanExec, seq: Option<u64> },
    /// Execute a group-committed batch of ordered statements as one message.
    /// Statements run in batch order on their own connections; the node
    /// skips already-applied `seq`s individually (same idempotence contract
    /// as `Execute`) and charges the batch's cost via the parallel-replay
    /// grouping over written tables, which is where grouped apply wins.
    ExecuteBatch { op: u64, stmts: Vec<BatchStmt> },
    /// Prepared-statement variant of `ExecuteBatch` (plan-cache fan-out).
    /// Answered by the same `ExecBatchOut`.
    ExecuteBatchPlan { op: u64, stmts: Vec<PlanBatchStmt> },
    /// Extract the open transaction's writeset (certification path).
    PrepareWriteset { op: u64, conn: u64 },
    /// Apply a certified writeset as one transaction.
    ApplyWriteset { op: u64, ws: Writeset },
    /// Apply several certified writesets in one message (the writeset-mode
    /// twin of `ExecuteBatch`): one fan-out message per backend per
    /// group-commit flush instead of one per transaction. Each part is
    /// still its own transaction with its own outcome; disjoint-table parts
    /// are charged the grouped parallel cost like batched statement apply.
    ApplyWritesetBatch { op: u64, parts: Vec<Writeset> },
    /// Apply shipped binlog entries (slave side). `parallel_apply` groups
    /// entries touching disjoint tables and charges only the longest group
    /// (the §4.4.2 "extraction of parallelism from the log").
    /// `foreign_lsn`: entry LSNs live in the sender's (master's) LSN space —
    /// track them in `applied_lsn` and skip already-applied entries
    /// (idempotent shipping). Recovery replay uses its own sequence space
    /// and passes false.
    ApplyBinlog {
        op: u64,
        entries: Vec<BinlogEntry>,
        use_writesets: bool,
        parallel_apply: bool,
        /// Which idempotence space the entry LSNs live in (see [`ApplySpace`]).
        space: ApplySpace,
    },
    /// Fetch binlog entries after an LSN (master side of log shipping).
    BinlogAfter { op: u64, after: Lsn },
    /// Take a dump (hot backup: the node keeps serving but is slowed).
    Dump { op: u64, include_programs: bool, include_principals: bool },
    /// Load a dump (used to initialize or resynchronize a replica).
    /// `baseline` is the source's binlog LSN at dump time; `ordered_baseline`
    /// is the middleware's ordered-log position the dump is consistent with.
    Restore { op: u64, dump: Box<Dump>, baseline: Lsn, ordered_baseline: u64 },
    /// State checksum for divergence detection.
    Checksum { op: u64, full: bool },
    /// Liveness probe.
    Ping { op: u64 },
    /// Drop a session's connection (client disconnected): releases temp
    /// tables and aborts open transactions.
    Disconnect { conn: u64 },
}

/// One statement of a grouped [`DbOp::ExecuteBatch`].
#[derive(Debug, Clone)]
pub struct BatchStmt {
    pub conn: u64,
    pub sql: String,
    /// Replication-log position (see [`DbOp::Execute`]'s `seq`).
    pub seq: Option<u64>,
}

/// One statement of a grouped [`DbOp::ExecuteBatchPlan`].
#[derive(Debug, Clone)]
pub struct PlanBatchStmt {
    pub conn: u64,
    pub plan: PlanExec,
    /// Replication-log position (see [`DbOp::Execute`]'s `seq`).
    pub seq: Option<u64>,
}

/// Per-statement outcome inside an [`DbResp::ExecBatchOut`]: the payload
/// the corresponding `ExecOk`/`ExecErr` would have carried.
#[derive(Debug, Clone)]
pub enum BatchExecResult {
    Ok { body: ReplyBody, commit: Option<CommitNote>, tainted: bool },
    Err { err: SqlError },
}

/// Database node responses.
#[derive(Debug, Clone)]
pub enum DbResp {
    ExecOk {
        op: u64,
        body: ReplyBody,
        /// Set when this statement committed a transaction.
        commit: Option<CommitNote>,
        tainted: bool,
    },
    ExecErr { op: u64, err: SqlError },
    /// Results of a grouped execute, one per statement, in batch order.
    ExecBatchOut { op: u64, results: Vec<BatchExecResult> },
    WritesetOut { op: u64, ws: Box<Writeset> },
    BinlogOut {
        op: u64,
        entries: Vec<BinlogEntry>,
        /// The log was truncated past the requested LSN: full resync needed.
        resync_needed: bool,
        head: Lsn,
    },
    DumpOut { op: u64, dump: Box<Dump>, head: Lsn },
    RestoreOk { op: u64 },
    ChecksumOut { op: u64, value: u64 },
    Pong {
        op: u64,
        applied_lsn: Lsn,
        head: Lsn,
        /// Highest ordered-statement sequence the node has durably applied.
        /// After a lossy crash (lost/torn WAL tail) this can sit *below*
        /// the middleware's recovery-log checkpoint for the backend; the
        /// middleware must replay from the node's position, not its own.
        ordered_applied: u64,
    },
    ApplyOk { op: u64, applied_lsn: Lsn },
    ApplyErr { op: u64, err: SqlError },
    /// Per-part outcomes of an `ApplyWritesetBatch` (None = applied).
    ApplyBatchOut { op: u64, results: Vec<Option<SqlError>> },
}

impl DbResp {
    pub fn op(&self) -> u64 {
        match self {
            DbResp::ExecOk { op, .. }
            | DbResp::ExecErr { op, .. }
            | DbResp::ExecBatchOut { op, .. }
            | DbResp::WritesetOut { op, .. }
            | DbResp::BinlogOut { op, .. }
            | DbResp::DumpOut { op, .. }
            | DbResp::RestoreOk { op }
            | DbResp::ChecksumOut { op, .. }
            | DbResp::Pong { op, .. }
            | DbResp::ApplyOk { op, .. }
            | DbResp::ApplyErr { op, .. }
            | DbResp::ApplyBatchOut { op, .. } => *op,
        }
    }
}

/// A commit observed at a backend.
#[derive(Debug, Clone)]
pub struct CommitNote {
    pub writeset: Writeset,
    pub lsn: Lsn,
}

/// Payload totally ordered among middleware peers (the replication traffic
/// itself).
#[derive(Debug, Clone)]
pub enum ReplEvent {
    /// Statement-based replication: one (possibly rewritten) write
    /// statement, executed by every middleware on every backend in delivery
    /// order.
    Statement {
        session: SessionId,
        stmt_seq: u64,
        sql: String,
        /// The admission-time parse of `sql`, threaded through delivery so
        /// table extraction and fan-out never re-parse the text (the
        /// admission/delivery double-parse bug: under concurrent schema
        /// change the two parses could disagree). `sql` stays the canonical
        /// replicated form; `ast` always binds to the same statement.
        ast: PlanExec,
    },
    /// Certification request for a transaction's writeset.
    Certify {
        session: SessionId,
        stmt_seq: u64,
        /// Certifier position when the transaction began.
        start_pos: u64,
        ws: Writeset,
    },
    /// Cross-group prepare (partial replication): one multi-group
    /// transaction's writeset slice for this group's stream. Published into
    /// *every* involved group's total order; each peer certifies the slice
    /// in that group's certifier shard at delivery (the vote is a pure
    /// function of the group-local stream, so every replica computes the
    /// same vote without extra wire messages) and the global decision is
    /// the AND over all involved groups' votes, reached when the last
    /// involved stream delivers its slice.
    XPrepare {
        session: SessionId,
        stmt_seq: u64,
        /// Every group the transaction touches (sorted; identifies the
        /// decision quorum).
        groups: Vec<u32>,
        /// This group's certifier position when the transaction began.
        start_pos: u64,
        /// The writeset slice touching this group's tables only.
        part: Writeset,
    },
    /// Session teardown (propagated so peers drop replicated session state).
    SessionEnd { session: SessionId },
    /// A group-committed batch: the contained events occupy ONE total-order
    /// slot and are applied in vector order at every peer, so the admission
    /// order inside the batch is preserved exactly. Batches never nest.
    Batch { events: Vec<ReplEvent> },
}

/// Management commands injected by the operator/harness (§4.4: backup and
/// replica management are normal operations a replication middleware must
/// coordinate).
#[derive(Debug, Clone)]
pub enum AdminCmd {
    /// Take a backup from `backend`. `hot`: the node keeps serving (but is
    /// slowed by the dump); cold: the node is removed from rotation first
    /// (checkpointed) and rejoins through the recovery log afterwards.
    Backup { backend: BackendId, hot: bool },
    /// Administratively remove a replica (planned maintenance, §4.4.2).
    RemoveBackend { backend: BackendId },
    /// Gracefully drain a replica out of rotation (planned maintenance,
    /// §4.4.1): new work stops routing to it immediately, in-flight
    /// operations are allowed to complete, then the backend parks in
    /// `Removed` — out of rotation even while alive, unlike the abrupt
    /// `RemoveBackend` which fails in-flight work. Re-admit it later with
    /// [`AdminCmd::AddBackend`].
    DrainBackend { backend: BackendId },
    /// Re-admit a previously drained/removed replica: it is marked down
    /// and the next pong starts the normal rejoin procedure (§4.4.2).
    AddBackend { backend: BackendId },
    /// Tear down a client session (disconnect). The middleware publishes
    /// `ReplEvent::SessionEnd` through the total order so every peer drops
    /// the replicated session state — including latency metadata and
    /// stashed 2-safe bodies, which used to leak (see `end_session`).
    EndSession { session: SessionId },
}

/// Everything that can travel between nodes in the simulation.
#[derive(Debug, Clone)]
pub enum Msg {
    Admin(AdminCmd),
    Request(ClientRequest),
    Reply(ClientReply),
    Db(DbOp),
    DbR(DbResp),
    Group(GcsMsg<ReplEvent>),
    /// Partial replication: GCS traffic for one per-group sequencer. Each
    /// table group runs its own independent `GroupMember` stream; the tag
    /// routes the message to the right shard.
    GroupShard { group: u32, msg: GcsMsg<ReplEvent> },
    /// Master→slave binlog shipping (master-slave mode, no GCS involved).
    Ship { entries: Vec<BinlogEntry>, seq: u64 },
    ShipAck { upto: Lsn, seq: u64 },
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn reply_error_retryability() {
        assert!(ReplyError::Unavailable("x".into()).is_retryable());
        assert!(!ReplyError::Rejected("x".into()).is_retryable());
        assert!(ReplyError::Degraded("x".into()).is_retryable());
        assert!(ReplyError::Sql(SqlError::SerializationFailure("r".into())).is_retryable());
        assert!(!ReplyError::Sql(SqlError::DuplicateKey("k".into())).is_retryable());
    }

    #[test]
    fn plan_exec_codec_round_trip() {
        let form = replimid_sql::normalize("UPDATE t SET v = -2.5, s = 'o''brien' WHERE k = 7")
            .unwrap();
        let cached = replimid_sql::CachedPlan::prepare(&form).unwrap();
        let plan = PlanExec { template: cached.template.clone(), params: form.params };
        let decoded = PlanExec::decode(&plan.encode()).unwrap();
        assert_eq!(*decoded.template, *plan.template);
        assert_eq!(decoded.params, plan.params);
        assert_eq!(decoded.bind().unwrap(), plan.bind().unwrap());
        // The wire image is the compact form: template text + params, far
        // smaller than the rendered-per-literal SQL would be for large text.
        let all_params = [
            Value::Null,
            Value::Int(-5),
            Value::Float(2.5),
            Value::Text("x?y".into()),
            Value::Bool(true),
            Value::Bool(false),
            Value::Timestamp(42),
        ];
        let p2 = PlanExec { template: plan.template.clone(), params: all_params.to_vec() };
        let d2 = PlanExec::decode(&p2.encode()).unwrap();
        assert_eq!(d2.params, p2.params);
    }

    #[test]
    fn db_resp_op_extraction() {
        assert_eq!(DbResp::RestoreOk { op: 7 }.op(), 7);
        assert_eq!(
            DbResp::ExecErr { op: 9, err: SqlError::Internal("x".into()) }.op(),
            9
        );
    }
}
