//! Transaction-level tracing with per-stage latency attribution (§5.1).
//!
//! Every client transaction carries a [`TraceId`]; each layer (client,
//! middleware, database node) owns a [`TraceSink`] and appends virtual-time
//! [`SpanRec`]s at its event transitions. Because spans are recorded with a
//! per-trace *cursor* — every event records the window since the previous
//! event on that trace and advances the cursor — the spans of a completed
//! trace tile its end-to-end window exactly: no lost and no double-counted
//! time. Any interval a stage forgot to claim surfaces as [`Stage::Other`]
//! instead of silently vanishing, so the reconciliation property
//! (`Σ stage_us == end - start`) holds by construction and the `Other` row
//! in a breakdown table is the instrumentation-coverage gauge.
//!
//! All timestamps are simnet virtual microseconds: two same-seed runs
//! produce bit-identical traces, and the experiments double-run diff in
//! `scripts/verify.sh` covers every number derived from them.

use std::collections::{BTreeMap, VecDeque};

use crate::metrics::Histogram;

/// Globally unique transaction trace id (allocated by the issuing client:
/// session id in the high bits, per-client transaction counter in the low).
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub struct TraceId(pub u64);

/// The span taxonomy. Client-side stages and middleware-side stages live in
/// the same enum so one waterfall can interleave both sinks.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub enum Stage {
    /// Request arrival → dispatch decision at the middleware (queueing /
    /// parse / dedup; instantaneous in the simulator, recorded for count).
    Admission,
    /// Load-balancer pick (zero-width marker; the pick itself is free).
    BalancerPick,
    /// Open-loop driver admission queue: arrival → dispatch, the wait a
    /// request spends queued because the in-flight bound was saturated.
    /// Zero for closed-loop clients (they never queue ahead of admission).
    QueueWait,
    /// Group-commit buffering: admission → batch flush (size or deadline).
    /// Zero-width when batching is off (`batch_max <= 1`).
    BatchWait,
    /// Freshness-constrained read routing: read parked because no replica
    /// had applied the session's last committed write yet → dispatch once
    /// the freshness vector catches up (or the wait deadline routes it to
    /// the primary). Never recorded under `ReadPolicy::Any`.
    FreshnessWait,
    /// Total-order wait: GCS publish → self-delivery at the origin.
    Order,
    /// Backend execution window as observed by the middleware (dispatch →
    /// response), including writeset extraction.
    Execute,
    /// Certification wait: Certify publish → ordered verdict at the origin.
    Certify,
    /// Cross-group commit wait (partial replication): first involved
    /// group's prepare delivery → the last involved group's vote arriving,
    /// i.e. the 2PC decision point. Zero-width for single-group
    /// transactions and absent entirely without a placement.
    CrossGroupWait,
    /// Replication fan-out: commit/apply fan-out → last peer ack.
    Fanout,
    /// Client-side: statement sent → timeout fired, and the backed-off
    /// failover resend wait that follows.
    Retry,
    /// Client-side: abort-retry backoff timer wait.
    Backoff,
    /// Client-side: ROLLBACK round trip after a failed attempt.
    Rollback,
    /// Client-side: statement send → reply (the full middleware round trip
    /// as the client sees it, network included).
    ClientRtt,
    /// Database-node busy window for one operation (queue + service time).
    DbService,
    /// Database-node crash recovery: checkpoint load + WAL suffix replay +
    /// durable-device IO, charged on restart (detached — recovery belongs
    /// to no client transaction).
    Replay,
    /// Residual time no stage claimed (tiling catch-all; should stay 0).
    Other,
}

pub const N_STAGES: usize = 17;

impl Stage {
    pub const ALL: [Stage; N_STAGES] = [
        Stage::Admission,
        Stage::BalancerPick,
        Stage::QueueWait,
        Stage::BatchWait,
        Stage::FreshnessWait,
        Stage::Order,
        Stage::Execute,
        Stage::Certify,
        Stage::CrossGroupWait,
        Stage::Fanout,
        Stage::Retry,
        Stage::Backoff,
        Stage::Rollback,
        Stage::ClientRtt,
        Stage::DbService,
        Stage::Replay,
        Stage::Other,
    ];

    pub fn idx(self) -> usize {
        match self {
            Stage::Admission => 0,
            Stage::BalancerPick => 1,
            Stage::QueueWait => 2,
            Stage::BatchWait => 3,
            Stage::FreshnessWait => 4,
            Stage::Order => 5,
            Stage::Execute => 6,
            Stage::Certify => 7,
            Stage::CrossGroupWait => 8,
            Stage::Fanout => 9,
            Stage::Retry => 10,
            Stage::Backoff => 11,
            Stage::Rollback => 12,
            Stage::ClientRtt => 13,
            Stage::DbService => 14,
            Stage::Replay => 15,
            Stage::Other => 16,
        }
    }

    pub fn name(self) -> &'static str {
        match self {
            Stage::Admission => "admission",
            Stage::BalancerPick => "balancer-pick",
            Stage::QueueWait => "queue-wait",
            Stage::BatchWait => "batch-wait",
            Stage::FreshnessWait => "freshness-wait",
            Stage::Order => "order",
            Stage::Execute => "execute",
            Stage::Certify => "certify",
            Stage::CrossGroupWait => "xgroup-wait",
            Stage::Fanout => "fanout",
            Stage::Retry => "retry",
            Stage::Backoff => "backoff",
            Stage::Rollback => "rollback",
            Stage::ClientRtt => "client-rtt",
            Stage::DbService => "db-service",
            Stage::Replay => "replay",
            Stage::Other => "other",
        }
    }
}

/// One recorded span: `stage` owned the trace's time from `start_us` to
/// `end_us` (virtual microseconds).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct SpanRec {
    pub stage: Stage,
    pub start_us: u64,
    pub end_us: u64,
}

impl SpanRec {
    pub fn duration_us(&self) -> u64 {
        self.end_us - self.start_us
    }
}

#[derive(Debug, Clone)]
struct OpenTrace {
    start_us: u64,
    cursor_us: u64,
    spans: Vec<SpanRec>,
}

/// Compact record of a completed trace: enough for the reconciliation
/// property and per-second series without retaining every span.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct TraceSummary {
    pub trace: TraceId,
    pub start_us: u64,
    pub end_us: u64,
    /// Total microseconds attributed to each stage (indexed by
    /// [`Stage::idx`]); sums to exactly `end_us - start_us`.
    pub stage_us: [u64; N_STAGES],
    pub span_count: u32,
}

impl TraceSummary {
    pub fn duration_us(&self) -> u64 {
        self.end_us - self.start_us
    }
}

/// A completed trace retained with full spans (top-K slowest only), so a
/// waterfall can be rendered after the fact.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct CompletedTrace {
    pub trace: TraceId,
    pub start_us: u64,
    pub end_us: u64,
    pub spans: Vec<SpanRec>,
}

impl CompletedTrace {
    pub fn duration_us(&self) -> u64 {
        self.end_us - self.start_us
    }
}

/// Bounded, deterministic in-memory sink for trace spans.
///
/// - per-stage [`Histogram`]s aggregate every span ever recorded;
/// - a capped ring buffer keeps the most recent [`TraceSummary`]s;
/// - the top-K slowest completed traces are retained with full spans for
///   waterfall rendering.
///
/// All internal collections are ordered (BTreeMap / sorted Vec) and every
/// bound evicts deterministically, so two same-seed runs produce identical
/// sinks.
#[derive(Debug, Clone)]
pub struct TraceSink {
    stage_hist: Vec<Histogram>,
    open: BTreeMap<u64, OpenTrace>,
    completed: VecDeque<TraceSummary>,
    slowest: Vec<CompletedTrace>,
    /// Completed traces ever recorded (ring evictions included).
    pub completed_count: u64,
    /// Open traces evicted before completion (bound pressure) plus spans
    /// addressed to traces this sink never opened.
    pub dropped: u64,
    max_open: usize,
    ring_cap: usize,
    top_k: usize,
}

impl Default for TraceSink {
    fn default() -> Self {
        Self::new()
    }
}

impl TraceSink {
    pub fn new() -> Self {
        Self::with_bounds(4096, 4096, 8)
    }

    pub fn with_bounds(max_open: usize, ring_cap: usize, top_k: usize) -> Self {
        TraceSink {
            stage_hist: (0..N_STAGES).map(|_| Histogram::new()).collect(),
            open: BTreeMap::new(),
            completed: VecDeque::new(),
            slowest: Vec::new(),
            completed_count: 0,
            dropped: 0,
            max_open: max_open.max(1),
            ring_cap,
            top_k,
        }
    }

    /// Open a trace window at `now_us`. Re-opening an id already open is a
    /// no-op (resends dedup upstream; first arrival wins).
    pub fn begin(&mut self, trace: TraceId, now_us: u64) {
        if self.open.contains_key(&trace.0) {
            return;
        }
        if self.open.len() >= self.max_open {
            // Trace ids are allocated monotonically, so the smallest key is
            // the oldest open trace: evict it deterministically.
            if let Some((&oldest, _)) = self.open.iter().next() {
                self.open.remove(&oldest);
                self.dropped += 1;
            }
        }
        self.open.insert(
            trace.0,
            OpenTrace { start_us: now_us, cursor_us: now_us, spans: Vec::new() },
        );
    }

    /// Attribute the window since the trace's last event to `stage` and
    /// advance the cursor to `now_us`. Unknown/evicted traces are counted
    /// in `dropped` and otherwise ignored.
    pub fn span(&mut self, trace: TraceId, stage: Stage, now_us: u64) {
        let Some(open) = self.open.get_mut(&trace.0) else {
            self.dropped += 1;
            return;
        };
        let start = open.cursor_us;
        let end = now_us.max(start);
        open.spans.push(SpanRec { stage, start_us: start, end_us: end });
        open.cursor_us = end;
        self.stage_hist[stage.idx()].record(end - start);
    }

    /// Close a trace at `now_us`. Residual time the stages did not claim is
    /// attributed to [`Stage::Other`], preserving exact tiling.
    pub fn end(&mut self, trace: TraceId, now_us: u64) {
        let Some(mut open) = self.open.remove(&trace.0) else {
            self.dropped += 1;
            return;
        };
        let end = now_us.max(open.cursor_us);
        if end > open.cursor_us {
            open.spans
                .push(SpanRec { stage: Stage::Other, start_us: open.cursor_us, end_us: end });
            self.stage_hist[Stage::Other.idx()].record(end - open.cursor_us);
        }
        let mut stage_us = [0u64; N_STAGES];
        for s in &open.spans {
            stage_us[s.stage.idx()] += s.duration_us();
        }
        let summary = TraceSummary {
            trace,
            start_us: open.start_us,
            end_us: end,
            stage_us,
            span_count: open.spans.len() as u32,
        };
        self.completed_count += 1;
        if self.ring_cap > 0 {
            if self.completed.len() >= self.ring_cap {
                self.completed.pop_front();
            }
            self.completed.push_back(summary);
        }
        if self.top_k > 0 {
            self.slowest.push(CompletedTrace {
                trace,
                start_us: open.start_us,
                end_us: end,
                spans: open.spans,
            });
            // Slowest first; ties broken by trace id so eviction is
            // deterministic.
            self.slowest
                .sort_by(|a, b| b.duration_us().cmp(&a.duration_us()).then(a.trace.cmp(&b.trace)));
            self.slowest.truncate(self.top_k);
        }
    }

    /// Record a stand-alone span into the stage histograms without opening
    /// a trace window (used by layers that observe work keyed by op id
    /// rather than owning the transaction, e.g. database-node service time).
    pub fn record_detached(&mut self, stage: Stage, start_us: u64, end_us: u64) {
        self.stage_hist[stage.idx()].record(end_us.saturating_sub(start_us));
    }

    pub fn stage_histogram(&self, stage: Stage) -> &Histogram {
        &self.stage_hist[stage.idx()]
    }

    pub fn open_count(&self) -> usize {
        self.open.len()
    }

    /// Most recent completed-trace summaries, oldest first.
    pub fn completed(&self) -> impl Iterator<Item = &TraceSummary> {
        self.completed.iter()
    }

    /// Top-K slowest completed traces, slowest first, with full spans.
    pub fn slowest(&self) -> &[CompletedTrace] {
        &self.slowest
    }

    /// Merge another sink's aggregates (stage histograms, counters, top-K,
    /// ring). Open traces are not merged.
    pub fn merge(&mut self, other: &TraceSink) {
        for (a, b) in self.stage_hist.iter_mut().zip(&other.stage_hist) {
            a.merge(b);
        }
        self.completed_count += other.completed_count;
        self.dropped += other.dropped;
        for s in &other.completed {
            if self.ring_cap > 0 {
                if self.completed.len() >= self.ring_cap {
                    self.completed.pop_front();
                }
                self.completed.push_back(s.clone());
            }
        }
        if self.top_k > 0 {
            self.slowest.extend(other.slowest.iter().cloned());
            self.slowest
                .sort_by(|a, b| b.duration_us().cmp(&a.duration_us()).then(a.trace.cmp(&b.trace)));
            self.slowest.truncate(self.top_k);
        }
    }

    /// Render an ASCII waterfall for a captured trace (must be in the
    /// top-K ring). Bars are scaled to the trace's end-to-end window.
    pub fn waterfall(&self, trace: TraceId) -> Option<String> {
        let t = self.slowest.iter().find(|t| t.trace == trace)?;
        Some(render_waterfall(t))
    }
}

/// ASCII waterfall: one row per span, bar offset/width proportional to the
/// span's position in the trace's end-to-end window.
pub fn render_waterfall(t: &CompletedTrace) -> String {
    const COLS: usize = 48;
    let total = t.duration_us().max(1);
    let mut out = String::new();
    out.push_str(&format!(
        "trace {} — {} us end-to-end, {} spans\n",
        t.trace.0,
        t.duration_us(),
        t.spans.len()
    ));
    for s in &t.spans {
        let off = ((s.start_us - t.start_us) as u128 * COLS as u128 / total as u128) as usize;
        let mut width =
            ((s.duration_us() as u128 * COLS as u128).div_ceil(total as u128)) as usize;
        if s.duration_us() == 0 {
            width = 0;
        }
        let off = off.min(COLS);
        let width = width.min(COLS - off);
        let mut bar = String::new();
        bar.push_str(&" ".repeat(off));
        if width == 0 {
            bar.push('|');
        } else {
            bar.push_str(&"#".repeat(width));
        }
        out.push_str(&format!(
            "  {:<13} [{bar:<cols$}] {:>8} us\n",
            s.stage.name(),
            s.duration_us(),
            cols = COLS + 1,
        ));
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn spans_tile_exactly() {
        let mut sink = TraceSink::new();
        let t = TraceId(7);
        sink.begin(t, 100);
        sink.span(t, Stage::Admission, 100); // zero-width
        sink.span(t, Stage::Order, 350);
        sink.span(t, Stage::Execute, 900);
        sink.end(t, 1_000); // 100us unclaimed -> Other
        let s = sink.completed().next().unwrap();
        assert_eq!(s.duration_us(), 900);
        assert_eq!(s.stage_us.iter().sum::<u64>(), 900);
        assert_eq!(s.stage_us[Stage::Order.idx()], 250);
        assert_eq!(s.stage_us[Stage::Execute.idx()], 550);
        assert_eq!(s.stage_us[Stage::Other.idx()], 100);
        assert_eq!(sink.completed_count, 1);
        assert_eq!(sink.open_count(), 0);
    }

    #[test]
    fn top_k_keeps_slowest_deterministically() {
        let mut sink = TraceSink::with_bounds(64, 64, 2);
        for (id, dur) in [(1u64, 500u64), (2, 900), (3, 900), (4, 100)] {
            let t = TraceId(id);
            sink.begin(t, 0);
            sink.span(t, Stage::Execute, dur);
            sink.end(t, dur);
        }
        let slow: Vec<u64> = sink.slowest().iter().map(|t| t.trace.0).collect();
        // Ties (2, 3) break toward the lower trace id.
        assert_eq!(slow, vec![2, 3]);
        assert!(sink.waterfall(TraceId(2)).unwrap().contains("900 us"));
        assert!(sink.waterfall(TraceId(4)).is_none());
    }

    #[test]
    fn open_bound_evicts_oldest() {
        let mut sink = TraceSink::with_bounds(2, 8, 2);
        sink.begin(TraceId(1), 0);
        sink.begin(TraceId(2), 0);
        sink.begin(TraceId(3), 0); // evicts 1
        assert_eq!(sink.open_count(), 2);
        assert_eq!(sink.dropped, 1);
        sink.end(TraceId(1), 10); // already evicted: dropped, not completed
        assert_eq!(sink.dropped, 2);
        assert_eq!(sink.completed_count, 0);
    }

    #[test]
    fn backwards_clock_is_clamped() {
        let mut sink = TraceSink::new();
        let t = TraceId(1);
        sink.begin(t, 100);
        sink.span(t, Stage::Execute, 50); // never happens in simnet; clamp
        sink.end(t, 80);
        let s = sink.completed().next().unwrap();
        assert_eq!(s.duration_us(), 0);
        assert_eq!(s.stage_us.iter().sum::<u64>(), 0);
    }

    #[test]
    fn ring_buffer_is_bounded() {
        let mut sink = TraceSink::with_bounds(8, 3, 1);
        for id in 0..10u64 {
            sink.begin(TraceId(id), id * 10);
            sink.end(TraceId(id), id * 10 + 5);
        }
        assert_eq!(sink.completed_count, 10);
        let kept: Vec<u64> = sink.completed().map(|s| s.trace.0).collect();
        assert_eq!(kept, vec![7, 8, 9]);
    }

    #[test]
    fn waterfall_renders_all_spans() {
        let mut sink = TraceSink::new();
        let t = TraceId(42);
        sink.begin(t, 0);
        sink.span(t, Stage::Admission, 0);
        sink.span(t, Stage::Order, 400);
        sink.span(t, Stage::Execute, 1_000);
        sink.end(t, 1_000);
        let w = sink.waterfall(t).unwrap();
        assert!(w.contains("admission"));
        assert!(w.contains("order"));
        assert!(w.contains("execute"));
        assert!(w.contains("1000 us end-to-end"));
    }
}
