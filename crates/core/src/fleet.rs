//! Session-fleet driver: ONE actor that multiplexes thousands to a
//! million closed-loop sessions against a middleware node.
//!
//! The per-session `Client` actor is the right tool up to a few hundred
//! sessions; at the 10⁵–10⁶ range the E19 freshness experiment sweeps, a
//! node per session would drown the simulator in actors before the
//! middleware's own session storage (the thing under test) is touched.
//! `SessionFleet` keeps one slot per session — a few dozen bytes — and
//! drives them all through one node id.
//!
//! Each slot owns one key of the `bench` micro table (or of a `bench_<t>`
//! shard when `keys_per_table` is set) and alternates reads and writes on
//! it:
//!
//! * writes set `v` to a per-slot monotone value and record the value on
//!   acknowledgment;
//! * reads check the returned `v` against the last *acknowledged* write —
//!   observing anything smaller is a read-your-writes violation, counted
//!   in [`FleetMetrics::ryw_violations`]. Keys are slot-private, so the
//!   check is exact (nobody else ever writes the key).
//!
//! Churn (`churn_every`) tears a slot's session down with
//! `AdminCmd::EndSession` and continues under a fresh session id — the
//! session-map leak regression drives exactly this path.

use replimid_simnet::{Actor, Ctx, NodeId};

use crate::metrics::Histogram;
use crate::msg::{AdminCmd, ClientRequest, Msg, ReplyBody, SessionId};

#[derive(Debug, Clone)]
pub struct FleetConfig {
    /// First session id; the fleet owns ids `[first_session, ..)` upward
    /// (churn allocates fresh ones monotonically).
    pub first_session: u64,
    /// Number of concurrently live sessions (slots).
    pub sessions: usize,
    /// The middleware every request goes to.
    pub middleware: NodeId,
    /// Closed-loop think time between a reply and the slot's next request.
    pub think_time_us: u64,
    /// Slot start times are spread uniformly over this window, so a large
    /// fleet ramps in instead of arriving as one synchronized burst.
    pub ramp_us: u64,
    /// Writes per thousand requests (the rest are reads).
    pub write_permille: u32,
    /// End the session and continue under a fresh id every N completed
    /// requests (0 = never). Exercises `SessionEnd` teardown.
    pub churn_every: u64,
    /// Shard the keyspace over `bench_<t>` tables of this many keys
    /// (matching the workload crate's `micro::sharded_schema`); 0 = the
    /// single `bench` table.
    /// Point queries cost a scan of their table, so sharding keeps
    /// per-read cost constant as the fleet grows.
    pub keys_per_table: usize,
    /// Give up on a request after this long (counted as an error; the
    /// slot moves on so one lost reply cannot wedge it forever).
    pub request_timeout_us: u64,
    /// Every Nth slot (N > 0, slot index ≠ 0) becomes a pure *observer*:
    /// it never writes and reads its left neighbor's key instead of its
    /// own. Observers are the monotonic-reads litmus — they have no writes
    /// for a read-your-writes stamp to anchor to, so only a per-session
    /// read floor can keep their view from going backwards. 0 = off.
    pub observer_every: usize,
}

impl FleetConfig {
    pub fn new(first_session: u64, sessions: usize, middleware: NodeId) -> Self {
        FleetConfig {
            first_session,
            sessions,
            middleware,
            think_time_us: 1_000,
            ramp_us: 500_000,
            write_permille: 200,
            churn_every: 0,
            keys_per_table: 0,
            request_timeout_us: 2_000_000,
            observer_every: 0,
        }
    }
}

/// Aggregated fleet measurements.
#[derive(Debug, Clone, Default)]
pub struct FleetMetrics {
    pub reads: u64,
    pub writes: u64,
    pub errors: u64,
    /// Reads that observed a value older than the slot's last acknowledged
    /// write — must be 0 whenever the read policy guarantees RYW.
    pub ryw_violations: u64,
    /// Reads that observed a value older than one a *previous read* of the
    /// same session returned — the session went backwards in time. Must be
    /// 0 under `ReadPolicy::MonotonicReads` (and under Fresh, which is
    /// strictly stronger); `Any` routing produces these freely.
    pub monotonic_violations: u64,
    /// Sessions torn down by churn.
    pub sessions_ended: u64,
    pub read_latency: Histogram,
    pub write_latency: Histogram,
}

#[derive(Debug, Clone, Copy)]
enum PendingOp {
    Read { sent_us: u64 },
    Write { value: u64, sent_us: u64 },
}

/// One live session: the whole per-slot footprint is this struct.
#[derive(Debug, Clone)]
struct Slot {
    session: u64,
    stmt_seq: u64,
    /// Next value to write (per-slot monotone, starts at 1; the schema
    /// preloads v = 0).
    next_val: u64,
    /// Highest value acknowledged as committed — the RYW floor.
    acked_val: u64,
    /// Highest value any read has returned — the monotonic-reads floor.
    /// Distinct from `acked_val`: a read can observe another slot's-epoch
    /// value (after churn) or simply a replica ahead of the session's own
    /// writes, and monotonicity must hold from there on.
    last_seen_val: u64,
    pending: Option<PendingOp>,
    ops_done: u64,
    /// Monotone timer generation: a firing whose encoded epoch is older
    /// than this is a leftover guard from an already-answered request.
    epoch: u64,
}

pub struct SessionFleet {
    cfg: FleetConfig,
    slots: Vec<Slot>,
    /// session id -> slot index (reply demux; never iterated, so the
    /// process-randomized order is harmless).
    by_session: std::collections::HashMap<u64, usize>,
    /// Next fresh session id for churn.
    next_id: u64,
    pub metrics: FleetMetrics,
}

impl SessionFleet {
    pub fn new(cfg: FleetConfig) -> Self {
        let slots: Vec<Slot> = (0..cfg.sessions)
            .map(|i| Slot {
                session: cfg.first_session + i as u64,
                stmt_seq: 0,
                next_val: 1,
                acked_val: 0,
                last_seen_val: 0,
                pending: None,
                ops_done: 0,
                epoch: 0,
            })
            .collect();
        let by_session =
            slots.iter().enumerate().map(|(i, s)| (s.session, i)).collect();
        let next_id = cfg.first_session + cfg.sessions as u64;
        SessionFleet { cfg, slots, by_session, next_id, metrics: FleetMetrics::default() }
    }

    /// Arm the slot's (single logical) timer: tag = epoch * nslots + idx,
    /// so a stale firing — the timeout guard of a request that was in fact
    /// answered — identifies itself by its outdated epoch.
    fn arm_timer(&mut self, ctx: &mut Ctx<'_, Msg>, slot_idx: usize, delay_us: u64) {
        let n = self.slots.len() as u64;
        let slot = &mut self.slots[slot_idx];
        slot.epoch += 1;
        ctx.set_timer(delay_us, slot.epoch * n + slot_idx as u64);
    }

    fn issue(&mut self, ctx: &mut Ctx<'_, Msg>, slot_idx: usize) {
        let now = ctx.now().micros();
        // Deterministic per-op read/write mix (no RNG: the decision must
        // not perturb shared RNG state consumed by other actors).
        let slot = &self.slots[slot_idx];
        let observer = self.cfg.observer_every > 0
            && slot_idx > 0
            && slot_idx.is_multiple_of(self.cfg.observer_every);
        let mix = (slot.session.wrapping_mul(1_000_003) ^ slot.ops_done.wrapping_mul(97)) % 1_000;
        let write = !observer && (mix as u32) < self.cfg.write_permille;
        // Observers watch the neighbor's key; its values are monotone (the
        // neighbor writes them), so the monotonic check stays exact.
        let key_idx = if observer { slot_idx - 1 } else { slot_idx };
        let (table, key) = match self.cfg.keys_per_table {
            0 => ("bench".to_string(), key_idx),
            kpt => (format!("bench_{}", key_idx / kpt), key_idx % kpt),
        };
        let slot = &mut self.slots[slot_idx];
        slot.stmt_seq += 1;
        let (sql, pending) = if write {
            let value = slot.next_val;
            slot.next_val += 1;
            (
                format!("UPDATE {table} SET v = {value} WHERE k = {key}"),
                PendingOp::Write { value, sent_us: now },
            )
        } else {
            (format!("SELECT v FROM {table} WHERE k = {key}"), PendingOp::Read { sent_us: now })
        };
        slot.pending = Some(pending);
        let req = ClientRequest {
            session: SessionId(slot.session),
            stmt_seq: slot.stmt_seq,
            trace: 0,
            sql,
        };
        ctx.send(self.cfg.middleware, Msg::Request(req));
        // The timer doubles as the request-timeout guard: while an op is
        // pending, its firing means the reply never came.
        self.arm_timer(ctx, slot_idx, self.cfg.request_timeout_us);
    }

    /// Reply handled (or timed out): maybe churn the session, then rest.
    fn finish_op(&mut self, ctx: &mut Ctx<'_, Msg>, slot_idx: usize) {
        let churn = {
            let slot = &mut self.slots[slot_idx];
            slot.pending = None;
            slot.ops_done += 1;
            self.cfg.churn_every > 0 && slot.ops_done.is_multiple_of(self.cfg.churn_every)
        };
        if churn {
            let old = self.slots[slot_idx].session;
            ctx.send(self.cfg.middleware, Msg::Admin(AdminCmd::EndSession {
                session: SessionId(old),
            }));
            self.metrics.sessions_ended += 1;
            self.by_session.remove(&old);
            let fresh = self.next_id;
            self.next_id += 1;
            self.by_session.insert(fresh, slot_idx);
            let slot = &mut self.slots[slot_idx];
            slot.session = fresh;
            slot.stmt_seq = 0;
            // The data survives the session; the RYW floor does not (a new
            // session has no writes of its own yet), and neither does the
            // monotonic floor — session guarantees are per-session.
            slot.acked_val = 0;
            slot.last_seen_val = 0;
            slot.pending = None;
        }
        let think = self.cfg.think_time_us.max(1);
        self.arm_timer(ctx, slot_idx, think);
    }

    fn on_reply(&mut self, ctx: &mut Ctx<'_, Msg>, session: u64, stmt_seq: u64, result: Result<ReplyBody, ()>) {
        let Some(&slot_idx) = self.by_session.get(&session) else { return };
        let now = ctx.now().micros();
        {
            let slot = &mut self.slots[slot_idx];
            if slot.stmt_seq != stmt_seq {
                return; // stale: a timed-out request answered late
            }
            let Some(pending) = slot.pending else { return };
            match (pending, result) {
                (PendingOp::Write { value, sent_us }, Ok(_)) => {
                    slot.acked_val = slot.acked_val.max(value);
                    self.metrics.writes += 1;
                    self.metrics.write_latency.record(now - sent_us);
                }
                (PendingOp::Read { sent_us }, Ok(body)) => {
                    self.metrics.reads += 1;
                    self.metrics.read_latency.record(now - sent_us);
                    if let ReplyBody::Rows(rs) = body {
                        let seen = rs
                            .rows
                            .first()
                            .and_then(|r| r.first())
                            .and_then(|v| v.as_int())
                            .unwrap_or(0);
                        if (seen as u64) < slot.acked_val {
                            self.metrics.ryw_violations += 1;
                            if std::env::var("REPLIMID_DEBUG").is_ok() {
                                eprintln!(
                                    "[fleet] RYW violation t={now} session={session} key={slot_idx} seen={seen} acked={}",
                                    slot.acked_val
                                );
                            }
                        }
                        if (seen as u64) < slot.last_seen_val {
                            self.metrics.monotonic_violations += 1;
                            if std::env::var("REPLIMID_DEBUG").is_ok() {
                                eprintln!(
                                    "[fleet] monotonic violation t={now} session={session} key={slot_idx} seen={seen} floor={}",
                                    slot.last_seen_val
                                );
                            }
                        }
                        slot.last_seen_val = slot.last_seen_val.max(seen as u64);
                    }
                }
                (_, Err(())) => {
                    self.metrics.errors += 1;
                }
            }
        }
        self.finish_op(ctx, slot_idx);
    }
}

impl Actor<Msg> for SessionFleet {
    fn on_start(&mut self, ctx: &mut Ctx<'_, Msg>) {
        let n = self.cfg.sessions.max(1) as u64;
        for i in 0..self.cfg.sessions {
            // Uniform ramp: slot i starts at its share of the window.
            let offset = 1 + (i as u64).wrapping_mul(self.cfg.ramp_us) / n;
            self.arm_timer(ctx, i, offset);
        }
    }

    fn on_message(&mut self, ctx: &mut Ctx<'_, Msg>, _from: NodeId, msg: Msg) {
        if let Msg::Reply(reply) = msg {
            let result = reply.result.map_err(|_| ());
            self.on_reply(ctx, reply.session.0, reply.stmt_seq, result);
        }
    }

    fn on_timer(&mut self, ctx: &mut Ctx<'_, Msg>, tag: u64) {
        let n = self.slots.len() as u64;
        if n == 0 {
            return;
        }
        let slot_idx = (tag % n) as usize;
        if self.slots[slot_idx].epoch != tag / n {
            return; // superseded guard timer
        }
        if self.slots[slot_idx].pending.is_some() {
            // Request-timeout guard fired with the op still outstanding.
            self.metrics.errors += 1;
            self.finish_op(ctx, slot_idx);
        } else {
            self.issue(ctx, slot_idx);
        }
    }
}
