//! Backend lifecycle under live traffic: graceful drain (in-flight work
//! completes, then the backend parks in `Removed`), re-admission via
//! `AddBackend` (normal rejoin machinery), crash-during-drain (stays
//! `Removed`), and spare capacity provisioned with `initial_removed`.

use replimid_core::{
    AdminCmd, BackendId, Cluster, ClusterConfig, Mode, NondetPolicy, TxSource,
};
use replimid_simnet::{dur, SimTime};

struct SeqInsert {
    next: i64,
}

impl TxSource for SeqInsert {
    fn next_tx(&mut self, _rng: &mut replimid_det::DetRng) -> Vec<String> {
        let k = self.next;
        self.next += 1;
        vec![format!("INSERT INTO t VALUES ({k}, 1)")]
    }
}

fn schema() -> Vec<String> {
    vec![
        "CREATE DATABASE bench".to_string(),
        "USE bench".to_string(),
        "CREATE TABLE t (k INT PRIMARY KEY, v INT)".to_string(),
    ]
}

fn mm_cluster() -> ClusterConfig {
    ClusterConfig::new(
        Mode::MultiMasterStatement { nondet: NondetPolicy::RewriteAndReject },
        schema(),
        "bench",
    )
}

#[test]
fn drain_removes_backend_without_losing_transactions() {
    let mut cfg = mm_cluster();
    cfg.backends_per_mw = 3;
    let mut cluster = Cluster::build(cfg);
    for i in 0..4 {
        // Bounded so traffic quiesces before the final checksum snapshot
        // (an unbounded closed loop always has a statement in flight).
        cluster.add_client(SeqInsert { next: i * 1_000_000 }, |c| c.tx_limit = 1_500);
    }
    cluster.admin_at(SimTime::from_secs(2), 0, AdminCmd::DrainBackend { backend: BackendId(1) });
    cluster.run_for(dur::secs(6));
    cluster.run_for(dur::secs(1));

    let m = cluster.mw_metrics(0);
    assert_eq!(m.counters.drains_started, 1);
    assert_eq!(m.counters.drains_completed, 1);
    assert_eq!(m.counters.failovers, 0, "a graceful drain is not a failover");
    assert_eq!(
        m.counters.lost_transactions, 0,
        "drain lets in-flight work complete instead of failing it"
    );
    assert_eq!(m.drains.len(), 1);
    let (b, started, removed) = m.drains[0];
    assert_eq!(b, 1);
    assert!(started >= 2_000_000 && removed >= started, "drain window is sane");
    let state = cluster.with_middleware(0, |mw| mw.recovery_state(BackendId(1)));
    assert_eq!(state, "Removed");
    assert_eq!(cluster.with_middleware(0, |mw| mw.online_backends()), 2);
    assert!(cluster.total_commits() > 0);
    // The survivors keep identical data; the drainee froze at removal.
    let sums = cluster.backend_checksums();
    assert_eq!(sums[0][0], sums[0][2], "survivors diverged");
}

#[test]
fn add_backend_readmits_a_drained_replica() {
    let mut cfg = mm_cluster();
    cfg.backends_per_mw = 3;
    let mut cluster = Cluster::build(cfg);
    for i in 0..4 {
        cluster.add_client(SeqInsert { next: i * 1_000_000 }, |c| c.tx_limit = 2_500);
    }
    cluster.admin_at(SimTime::from_secs(2), 0, AdminCmd::DrainBackend { backend: BackendId(1) });
    cluster.admin_at(SimTime::from_secs(5), 0, AdminCmd::AddBackend { backend: BackendId(1) });
    cluster.run_for(dur::secs(10));
    cluster.run_for(dur::secs(1));

    let m = cluster.mw_metrics(0);
    assert_eq!(m.counters.drains_completed, 1);
    assert_eq!(m.counters.backends_added, 1);
    assert!(!m.recoveries.is_empty(), "re-admission goes through the rejoin machinery");
    let state = cluster.with_middleware(0, |mw| mw.recovery_state(BackendId(1)));
    assert_eq!(state, "Online");
    assert_eq!(cluster.with_middleware(0, |mw| mw.online_backends()), 3);
    // Fully converged again: all three replicas identical.
    let sums = cluster.backend_checksums();
    assert_eq!(sums[0][0], sums[0][1]);
    assert_eq!(sums[0][0], sums[0][2]);
}

#[test]
fn crash_during_drain_parks_in_removed() {
    let mut cfg = mm_cluster();
    cfg.backends_per_mw = 3;
    let mut cluster = Cluster::build(cfg);
    for i in 0..4 {
        cluster.add_client(SeqInsert { next: i * 1_000_000 }, |_| {});
    }
    // Crash the drainee an instant after the drain starts: the failure
    // path must finalize the drain (Removed, not Down) so the node does
    // not auto-rejoin when it restarts and pongs again.
    cluster.admin_at(SimTime::from_secs(2), 0, AdminCmd::DrainBackend { backend: BackendId(1) });
    cluster.crash_backend_at(SimTime(2_000_001), 0, 1);
    cluster.restart_backend_at(SimTime::from_secs(3), 0, 1);
    cluster.run_for(dur::secs(6));
    cluster.run_for(dur::secs(1));

    let m = cluster.mw_metrics(0);
    assert_eq!(m.counters.drains_started, 1);
    let state = cluster.with_middleware(0, |mw| mw.recovery_state(BackendId(1)));
    // Either the drain finished before the crash landed (Removed via the
    // graceful path) or the crash finalized it (Removed via the failure
    // path) — never Down, never auto-rejoined.
    assert_eq!(state, "Removed");
    assert_eq!(m.counters.drains_completed, 1);
    assert_eq!(cluster.with_middleware(0, |mw| mw.online_backends()), 2);
}

#[test]
fn initial_removed_provisions_spare_capacity() {
    let mut cfg = mm_cluster();
    cfg.backends_per_mw = 3;
    cfg.mw.initial_removed = vec![2];
    let mut cluster = Cluster::build(cfg);
    for i in 0..4 {
        cluster.add_client(SeqInsert { next: i * 1_000_000 }, |c| c.tx_limit = 2_000);
    }
    cluster.run_for(dur::secs(2));
    assert_eq!(cluster.with_middleware(0, |mw| mw.online_backends()), 2);
    // Scale out under live load.
    let now = cluster.now();
    cluster.admin_at(now + dur::millis(1), 0, AdminCmd::AddBackend { backend: BackendId(2) });
    cluster.run_for(dur::secs(7));
    cluster.run_for(dur::secs(1));

    let m = cluster.mw_metrics(0);
    assert_eq!(m.counters.backends_added, 1);
    assert_eq!(cluster.with_middleware(0, |mw| mw.online_backends()), 3);
    let state = cluster.with_middleware(0, |mw| mw.recovery_state(BackendId(2)));
    assert_eq!(state, "Online");
    // The late joiner caught up to the incumbents.
    let sums = cluster.backend_checksums();
    assert_eq!(sums[0][0], sums[0][2], "spare did not converge after joining");
}
