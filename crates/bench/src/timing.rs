//! A tiny in-tree micro-benchmark harness (the criterion replacement).
//!
//! Scope is deliberately minimal: warm up, take a handful of samples of N
//! iterations each, report mean and best-sample ns/iter in a table. No
//! statistics beyond that — the benches exist to catch order-of-magnitude
//! regressions and to document how to measure, not to resolve 2% deltas.
//!
//! Bench binaries run with `cargo bench -p replimid-bench`. When invoked
//! with `--test` (as `cargo test --benches` does), every bench runs exactly
//! one iteration so CI smoke-checks the code paths without paying for
//! timing runs.

use std::time::Instant;

use crate::Table;

const SAMPLES: u32 = 5;

/// One bench's result.
pub struct Report {
    pub name: String,
    pub iters: u32,
    /// Mean ns/iter across all samples.
    pub mean_ns: f64,
    /// Mean ns/iter of the fastest sample (least scheduler noise).
    pub best_ns: f64,
}

/// Collects bench results and prints them on `finish`.
pub struct Runner {
    test_mode: bool,
    reports: Vec<Report>,
}

impl Runner {
    /// Inspect argv: `--test` selects one-iteration smoke mode; other
    /// libtest-style flags from `cargo bench`/`cargo test` are ignored.
    pub fn from_args() -> Self {
        let test_mode = std::env::args().any(|a| a == "--test");
        Runner { test_mode, reports: Vec::new() }
    }

    /// Time `f` over `iters` iterations per sample.
    pub fn bench(&mut self, name: &str, iters: u32, mut f: impl FnMut()) {
        if self.test_mode {
            f();
            return;
        }
        let iters = iters.max(1);
        // Warmup: one sample's worth, untimed.
        for _ in 0..iters {
            f();
        }
        let mut total_ns = 0.0;
        let mut best_ns = f64::INFINITY;
        for _ in 0..SAMPLES {
            let start = Instant::now();
            for _ in 0..iters {
                f();
            }
            let per_iter = start.elapsed().as_nanos() as f64 / iters as f64;
            total_ns += per_iter;
            best_ns = best_ns.min(per_iter);
        }
        self.reports.push(Report {
            name: name.to_string(),
            iters,
            mean_ns: total_ns / SAMPLES as f64,
            best_ns,
        });
    }

    /// Print the result table (no output in `--test` smoke mode).
    pub fn finish(self) {
        if self.test_mode {
            return;
        }
        let mut t = Table::new(&["bench", "iters", "mean", "best"]);
        for r in &self.reports {
            t.row(&[
                r.name.clone(),
                r.iters.to_string(),
                fmt_ns(r.mean_ns),
                fmt_ns(r.best_ns),
            ]);
        }
        t.print();
    }
}

fn fmt_ns(ns: f64) -> String {
    if ns >= 1e9 {
        format!("{:.2} s", ns / 1e9)
    } else if ns >= 1e6 {
        format!("{:.2} ms", ns / 1e6)
    } else if ns >= 1e3 {
        format!("{:.2} µs", ns / 1e3)
    } else {
        format!("{ns:.0} ns")
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn bench_runs_and_reports() {
        let mut r = Runner { test_mode: false, reports: Vec::new() };
        let mut count = 0u64;
        r.bench("spin", 10, || count += 1);
        // Warmup (10) + SAMPLES (5) timed passes of 10.
        assert_eq!(count, 10 + 5 * 10);
        assert_eq!(r.reports.len(), 1);
        assert!(r.reports[0].best_ns <= r.reports[0].mean_ns);
        r.finish(); // smoke: prints without panicking
    }

    #[test]
    fn test_mode_runs_once_and_stays_silent() {
        let mut r = Runner { test_mode: true, reports: Vec::new() };
        let mut count = 0u64;
        r.bench("spin", 1_000_000, || count += 1);
        assert_eq!(count, 1);
        assert!(r.reports.is_empty());
        r.finish();
    }

    #[test]
    fn ns_formatting_picks_sane_units() {
        assert_eq!(fmt_ns(500.0), "500 ns");
        assert_eq!(fmt_ns(1_500.0), "1.50 µs");
        assert_eq!(fmt_ns(2_500_000.0), "2.50 ms");
        assert_eq!(fmt_ns(3_000_000_000.0), "3.00 s");
    }
}
