//! Shared harness helpers for the experiment binary and the in-tree
//! micro-benchmarks: cluster builders, workload shorthands, table printing,
//! and the [`timing`] harness. Every experiment runs on the deterministic
//! simulator, so regenerated numbers are reproducible bit-for-bit from the
//! seed.

pub mod timing;

use replimid_core::{ClientMetrics, Cluster, ClusterConfig, Mode, NondetPolicy, Placement, TxSource};
use replimid_simnet::dur;
use replimid_workload::micro;

/// A fresh-key insert stream (never self-collides); used widely by the
/// experiments as the canonical write-heavy client.
pub struct SeqInsert {
    next: i64,
    pub table: &'static str,
}

impl SeqInsert {
    pub fn new(base: i64) -> Self {
        SeqInsert { next: base, table: "bench" }
    }
}

impl TxSource for SeqInsert {
    fn next_tx(&mut self, _rng: &mut replimid_det::DetRng) -> Vec<String> {
        let k = self.next;
        self.next += 1;
        vec![format!("INSERT INTO {} VALUES ({k}, 1)", self.table)]
    }
}

/// Default micro schema + statement-mode cluster config.
pub fn mm_statement_cfg(rows: usize) -> ClusterConfig {
    ClusterConfig::new(
        Mode::MultiMasterStatement { nondet: NondetPolicy::RewriteAndReject },
        micro::schema("bench", rows),
        "bench",
    )
}

/// A fresh-key insert stream sharded round-robin over `t0..t7`; the E18 /
/// PR5-bench write workload. Disjoint tables give the grouped batch apply
/// at the backends parallelism to exploit.
pub struct ShardedInsert {
    next: i64,
}

impl ShardedInsert {
    pub fn new(base: i64) -> Self {
        ShardedInsert { next: base }
    }
}

impl TxSource for ShardedInsert {
    fn next_tx(&mut self, _rng: &mut replimid_det::DetRng) -> Vec<String> {
        let k = self.next;
        self.next += 1;
        vec![format!("INSERT INTO t{} VALUES ({k}, 1)", k % 8)]
    }
}

/// Statement-mode cluster over 8 disjoint single-row tables with the
/// group-commit knobs set as given; `batch_max = 1` disables batching and
/// takes the exact pre-batching code path. Round-robin routing so the
/// numbers are not shaped by latency-aware placement.
pub fn group_commit_cfg(batch_max: usize, deadline_us: u64) -> ClusterConfig {
    let mut schema = vec!["CREATE DATABASE bench".to_string(), "USE bench".to_string()];
    for i in 0..8 {
        schema.push(format!("CREATE TABLE t{i} (k INT PRIMARY KEY, v INT)"));
    }
    let mut cfg = ClusterConfig::new(
        Mode::MultiMasterStatement { nondet: NondetPolicy::RewriteAndReject },
        schema,
        "bench",
    );
    cfg.mw.policy = replimid_core::Policy::RoundRobin;
    cfg.mw.batch_max = batch_max;
    cfg.mw.batch_deadline_us = deadline_us;
    cfg
}

/// Striped placement with the table map filled in: `tables` disjoint
/// tables `t0..`, table `t{g}` in group `g`, group `g` hosted by
/// `replicas` backends starting at `g % backends` (round-robin).
pub fn striped_placement(tables: usize, backends: usize, replicas: usize) -> Placement {
    let mut p = Placement::striped(tables, backends, replicas);
    if replicas < 2 {
        // The scaling ladders deliberately measure the 1-replica extreme;
        // production layouts should keep the sole-host rejection on.
        p = p.allow_sole_host();
    }
    for g in 0..tables {
        p = p.assign(&format!("t{g}"), g);
    }
    p
}

/// Writeset-mode cluster over `tables` disjoint single-row tables with an
/// optional table-group placement. `None` is full replication — the exact
/// global single-sequencer path (as is any trivial placement, which the
/// middleware normalizes away). Round-robin routing so scaling numbers
/// are not shaped by latency-aware placement.
pub fn partial_ws_cfg(tables: usize, backends: usize, placement: Option<Placement>) -> ClusterConfig {
    let mut cfg = ClusterConfig::new(
        Mode::MultiMasterWriteset,
        micro::disjoint_schema("bench", tables, 0),
        "bench",
    );
    cfg.backends_per_mw = backends;
    cfg.mw.policy = replimid_core::Policy::RoundRobin;
    cfg.mw.placement = placement;
    cfg
}

/// Aggregate committed/aborted/latency across a set of clients.
pub struct Agg {
    pub committed: u64,
    pub aborted: u64,
    pub failed: u64,
    pub mean_tx_us: f64,
    pub p99_tx_us: u64,
    pub mean_stmt_us: f64,
}

pub fn aggregate(cluster: &mut Cluster, clients: &[replimid_simnet::NodeId]) -> Agg {
    let mut committed = 0;
    let mut aborted = 0;
    let mut failed = 0;
    let mut tx_hist = replimid_core::Histogram::new();
    let mut stmt_hist = replimid_core::Histogram::new();
    for &c in clients {
        let m: ClientMetrics = cluster.client_metrics(c);
        committed += m.committed;
        aborted += m.aborted;
        failed += m.failed;
        tx_hist.merge(&m.tx_latency);
        stmt_hist.merge(&m.stmt_latency);
    }
    Agg {
        committed,
        aborted,
        failed,
        mean_tx_us: tx_hist.mean_us(),
        p99_tx_us: tx_hist.quantile_us(0.99),
        mean_stmt_us: stmt_hist.mean_us(),
    }
}

/// Throughput in committed transactions per virtual second.
pub fn tps(committed: u64, seconds: u64) -> f64 {
    committed as f64 / seconds as f64
}

/// Simple fixed-width table printer.
pub struct Table {
    headers: Vec<String>,
    rows: Vec<Vec<String>>,
}

impl Table {
    pub fn new(headers: &[&str]) -> Self {
        Table {
            headers: headers.iter().map(|s| s.to_string()).collect(),
            rows: Vec::new(),
        }
    }

    pub fn row(&mut self, cells: &[String]) {
        self.rows.push(cells.to_vec());
    }

    pub fn print(&self) {
        let mut widths: Vec<usize> = self.headers.iter().map(|h| h.len()).collect();
        for row in &self.rows {
            for (i, c) in row.iter().enumerate() {
                if i < widths.len() {
                    widths[i] = widths[i].max(c.len());
                }
            }
        }
        let line: Vec<String> = self
            .headers
            .iter()
            .zip(&widths)
            .map(|(h, w)| format!("{h:<w$}"))
            .collect();
        println!("  {}", line.join("  "));
        let sep: Vec<String> = widths.iter().map(|w| "-".repeat(*w)).collect();
        println!("  {}", sep.join("  "));
        for row in &self.rows {
            let line: Vec<String> = row
                .iter()
                .zip(&widths)
                .map(|(c, w)| format!("{c:<w$}"))
                .collect();
            println!("  {}", line.join("  "));
        }
        println!();
    }
}

/// Run a cluster for `secs` virtual seconds then quiesce for one more.
pub fn run_and_drain(cluster: &mut Cluster, secs: u64) {
    cluster.run_for(dur::secs(secs));
    cluster.run_for(dur::secs(1));
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn table_prints_aligned() {
        let mut t = Table::new(&["a", "longer"]);
        t.row(&["1".into(), "2".into()]);
        t.print(); // smoke: no panic
        assert_eq!(tps(100, 4), 25.0);
    }
}
