//! PR10 elasticity trajectory: management operations measured under
//! open-loop load, emitted as `BENCH_pr10.json` so successive PRs can
//! track the dip/recovery numbers instead of eyeballing the E23 tables.
//!
//! Three gates, all asserted on every run:
//!
//! * zero committed loss — every write the driver saw acknowledged is
//!   present on every backend that is Online at the end of the arm
//!   (acked ⊆ present; an Unavailable reply may still have committed via
//!   the total order, so presence of *unacked* keys is fine);
//! * accounting — every arrival reaches exactly one terminal outcome
//!   (ok + err + shed == arrivals): overload is counted, never absorbed;
//! * closed-loop identity — a classic closed-loop arm (no open-loop
//!   driver anywhere) is bit-identical across same-seed reruns: counters,
//!   certifier stats, and full data checksums. This is the E1..E22
//!   guarantee: with the driver off, none of this PR's machinery perturbs
//!   one message, cost, or decision.
//!
//! Usage:
//!   cargo run --release -p replimid-bench --bin bench_pr10
//!
//! With `--test` the timeline is compressed (op at 3s, 10s arms) and no
//! JSON is written, matching the other timing benches.

use replimid_bench::{aggregate, run_and_drain, SeqInsert};
use replimid_core::{
    AdminCmd, BackendId, Cluster, ClusterConfig, Mode, MwMetrics, NondetPolicy, Policy,
    QuarantineConfig,
};
use replimid_simnet::{dur, SimTime};
use replimid_sql::{Outcome, ADMIN_PASSWORD, ADMIN_USER};
use replimid_workload::{
    add_open_loop, micro, open_loop_metrics, ArrivalProcess, OpenLoopConfig, OpenLoopMetrics,
};

struct Timeline {
    /// Total run and arrival-stop times (virtual seconds).
    secs: u64,
    stop_s: u64,
    /// Baseline window and op time (virtual seconds).
    base: (usize, usize),
    op_s: usize,
}

fn timeline(test_mode: bool) -> Timeline {
    if test_mode {
        Timeline { secs: 10, stop_s: 9, base: (1, 3), op_s: 3 }
    } else {
        Timeline { secs: 26, stop_s: 24, base: (4, 8), op_s: 10 }
    }
}

/// One elasticity arm: the E23 cluster (3 statement-replicated backends
/// costed at 8x CPU, quarantine on) under 1700/s open-loop Poisson
/// arrivals, with admin ops injected mid-run. Returns the driver metrics
/// plus the per-backend key sets of the write table for the loss gate.
fn elasticity_arm(
    tl: &Timeline,
    initial_removed: Vec<usize>,
    ops: Vec<(u64, AdminCmd)>,
) -> (OpenLoopMetrics, MwMetrics, Vec<Option<std::collections::BTreeSet<i64>>>) {
    let mut schema = micro::schema("bench", 100);
    schema.push("CREATE TABLE olw (k INT PRIMARY KEY, v INT NOT NULL)".to_string());
    let mut cfg = ClusterConfig::new(
        Mode::MultiMasterStatement { nondet: NondetPolicy::RewriteAndReject },
        schema,
        "bench",
    );
    cfg.backends_per_mw = 3;
    cfg.mw.policy = Policy::RoundRobin;
    cfg.mw.quarantine = Some(QuarantineConfig::default());
    cfg.mw.initial_removed = initial_removed;
    cfg.backend_speed = vec![8.0];
    let mut cluster = Cluster::build(cfg);
    let mut olc = OpenLoopConfig::new(ArrivalProcess::Poisson { rate_per_sec: 1_700.0 });
    olc.seed = 10;
    olc.write_permille = 100;
    olc.read_keys = 100;
    olc.write_table = "olw".to_string();
    olc.max_inflight = 64;
    olc.queue_max = 512;
    olc.stop_at_us = tl.stop_s * 1_000_000;
    let driver = add_open_loop(&mut cluster, 0, olc);
    for (at_us, cmd) in ops {
        cluster.admin_at(SimTime(at_us), 0, cmd);
    }
    cluster.run_for(dur::secs(tl.secs));
    let m = open_loop_metrics(&mut cluster, driver);
    // Snapshot the write table on every backend that finished Online;
    // drained/Removed backends froze mid-stream and are exempt (their
    // in-flight work completed, but later acks never reached them).
    let keys: Vec<Option<std::collections::BTreeSet<i64>>> = (0..3)
        .map(|b| {
            let state = cluster.with_middleware(0, |mw| mw.recovery_state(BackendId(b)));
            if state != "Online" {
                return None;
            }
            Some(cluster.with_backend_engine(0, b, |e| {
                let c = e.connect(ADMIN_USER, ADMIN_PASSWORD).expect("admin login");
                e.execute(c, "USE bench").unwrap();
                let out = e.execute(c, "SELECT k FROM olw").unwrap().outcome;
                e.disconnect(c);
                match out {
                    Outcome::Rows(rs) => rs.rows.iter().map(|r| r[0].as_int().unwrap()).collect(),
                    other => panic!("expected rows, got {other:?}"),
                }
            }))
        })
        .collect();
    (m, cluster.mw_metrics(0), keys)
}

/// Windowed dip/recovery numbers for one arm (mirrors E23's definitions).
struct OpCost {
    baseline_tps: f64,
    dip_depth: f64,
    p99_base_us: u64,
    p99_op_us: u64,
    recover_s: i64,
    shed: u64,
}

fn op_cost(m: &OpenLoopMetrics, tl: &Timeline) -> OpCost {
    let sec = |s: usize| *m.per_sec_completed.get(s).unwrap_or(&0) as f64;
    let (b0, b1) = tl.base;
    let (op_s, end_s) = (tl.op_s, tl.stop_s as usize);
    let baseline_tps = m.completed_in(b0, b1) as f64 / (b1 - b0).max(1) as f64;
    let mut min_tps = f64::MAX;
    for s in op_s..end_s {
        min_tps = min_tps.min(sec(s));
    }
    let dip_depth = ((baseline_tps - min_tps) / baseline_tps.max(1e-9)).max(0.0);
    let p99_base_us = m.window_quantile_us(b0, b1, 0.99);
    let p99_op_us = m.window_quantile_us(op_s, (op_s + 6).min(end_s), 0.99);
    let recover_s = match (op_s..end_s).rev().find(|&s| sec(s) < 0.95 * baseline_tps) {
        None => 0,
        Some(s) if s + 1 >= end_s => -1,
        Some(s) => (s + 1 - op_s) as i64,
    };
    let shed = m.per_sec_shed.iter().skip(op_s).take(end_s - op_s).sum();
    OpCost { baseline_tps, dip_depth, p99_base_us, p99_op_us, recover_s, shed }
}

/// Gates that hold for every arm: full accounting and zero committed loss.
fn assert_arm(
    label: &str,
    m: &OpenLoopMetrics,
    keys: &[Option<std::collections::BTreeSet<i64>>],
) {
    assert_eq!(
        m.completed_ok + m.completed_err + m.shed,
        m.arrivals,
        "{label}: an arrival has no terminal outcome"
    );
    assert!(!m.acked_insert_keys.is_empty(), "{label}: no writes acknowledged");
    for (b, present) in keys.iter().enumerate() {
        let Some(present) = present else { continue };
        for k in &m.acked_insert_keys {
            assert!(
                present.contains(k),
                "{label}: backend {b} lost acknowledged write {k} (acked ⊆ present violated)"
            );
        }
    }
}

/// The closed-loop identity arm: classic bounded clients, no open-loop
/// driver anywhere near the cluster.
fn closed_arm() -> (MwMetrics, Vec<Vec<u64>>) {
    let mut cfg = ClusterConfig::new(
        Mode::MultiMasterStatement { nondet: NondetPolicy::RewriteAndReject },
        micro::schema("bench", 100),
        "bench",
    );
    cfg.backends_per_mw = 3;
    cfg.seed = 17;
    let mut cluster = Cluster::build(cfg);
    let clients: Vec<_> = (0..4)
        .map(|i| {
            cluster.add_client(SeqInsert::new(1_000_000 * (i + 1)), |cc| {
                cc.think_time_us = 1_000;
                cc.tx_limit = 800;
            })
        })
        .collect();
    run_and_drain(&mut cluster, 4);
    let agg = aggregate(&mut cluster, &clients);
    assert!(agg.committed > 0, "closed-loop arm committed nothing");
    (cluster.mw_metrics(0), cluster.backend_full_checksums())
}

fn main() {
    let test_mode = std::env::args().any(|a| a == "--test");
    let tl = timeline(test_mode);
    let op_us = tl.op_s as u64 * 1_000_000;
    let step = if test_mode { 1_000_000 } else { 3_000_000 };

    let mut rows = Vec::new();
    type Arm = (&'static str, Vec<usize>, Vec<(u64, AdminCmd)>);
    let arms: Vec<Arm> = vec![
        (
            "add_backend",
            vec![2],
            vec![(op_us, AdminCmd::AddBackend { backend: BackendId(2) })],
        ),
        (
            "drain_backend",
            vec![],
            vec![(op_us, AdminCmd::DrainBackend { backend: BackendId(1) })],
        ),
        (
            "rolling_restart",
            vec![],
            vec![
                (op_us, AdminCmd::DrainBackend { backend: BackendId(1) }),
                (op_us + step, AdminCmd::AddBackend { backend: BackendId(1) }),
                (op_us + 2 * step, AdminCmd::DrainBackend { backend: BackendId(2) }),
                (op_us + 3 * step, AdminCmd::AddBackend { backend: BackendId(2) }),
            ],
        ),
    ];
    for (label, removed, ops) in arms {
        let (m, mw, keys) = elasticity_arm(&tl, removed, ops);
        assert_arm(label, &m, &keys);
        match label {
            "add_backend" => {
                assert_eq!(mw.counters.backends_added, 1, "{label}: join did not happen")
            }
            "drain_backend" => {
                assert_eq!(mw.counters.drains_completed, 1, "{label}: drain did not finish");
                assert_eq!(mw.counters.lost_transactions, 0, "{label}: drain lost transactions");
            }
            "rolling_restart" => {
                assert_eq!(mw.counters.drains_completed, 2, "{label}: a drain did not finish");
                assert_eq!(mw.counters.backends_added, 2, "{label}: a re-add did not happen");
            }
            _ => unreachable!(),
        }
        let c = op_cost(&m, &tl);
        println!(
            "{label}: base {:.0} tps, dip {:.0}%, p99 {} -> {} µs, recover {}s, shed {}",
            c.baseline_tps,
            c.dip_depth * 100.0,
            c.p99_base_us,
            c.p99_op_us,
            c.recover_s,
            c.shed
        );
        rows.push(format!(
            "    {{\"op\": \"{label}\", \"baseline_tps\": {:.0}, \"dip_depth\": {:.3}, \
             \"p99_base_us\": {}, \"p99_op_us\": {}, \"recover_s\": {}, \"shed\": {}}}",
            c.baseline_tps, c.dip_depth, c.p99_base_us, c.p99_op_us, c.recover_s, c.shed
        ));
    }

    // -- closed-loop identity: the driver-off path is untouched ---------
    let (mw_a, sums_a) = closed_arm();
    let (mw_b, sums_b) = closed_arm();
    assert_eq!(mw_a.counters, mw_b.counters, "closed-loop arm not bit-identical");
    assert_eq!(mw_a.certifier, mw_b.certifier, "closed-loop certifier stats differ");
    assert_eq!(sums_a, sums_b, "closed-loop checksums not bit-identical");
    println!("closed-loop identity: counters, certifier stats, and checksums all equal");

    if !test_mode {
        let json = format!(
            "{{\n  \"bench\": \"pr10_elasticity\",\n  \"ops\": [\n{}\n  ],\n  \
             \"zero_committed_loss\": true,\n  \"closed_loop_identity\": true\n}}\n",
            rows.join(",\n"),
        );
        std::fs::write("BENCH_pr10.json", &json).expect("write BENCH_pr10.json");
        println!("wrote BENCH_pr10.json");
    }
}
