//! PR9 perf trajectory: partial replication with per-group sequencers,
//! emitted as `BENCH_pr9.json` so successive PRs can track the write
//! scaling instead of eyeballing the E22 tables.
//!
//! Two gates, both asserted on every run:
//!
//! * scaling — the E22 disjoint-insert workload at 2/4/8 backends with
//!   apply-limited backends (4x CPU cost), global full replication vs a
//!   striped one-replica placement. At 8 backends the partial arm must
//!   beat the global arm by more than 2x: that is the headline claim
//!   (per-backend apply load constant vs proportional to total load);
//! * compatibility — a trivial placement (one group hosted everywhere)
//!   must be normalized away and run the global single-sequencer path
//!   byte-for-byte: identical counters, certifier stats, and full data
//!   checksums vs no placement at all, and the no-placement arm itself
//!   must be bit-identical across reruns. This is the E1-E21 guarantee:
//!   with no (or a trivial) placement, none of the partial-replication
//!   machinery perturbs one message, cost, or decision.
//!
//! Usage:
//!   cargo run --release -p replimid-bench --bin bench_pr9
//!
//! With `--test` every simulated arm runs 1s and no JSON is written,
//! matching the other timing benches.

use replimid_bench::{aggregate, partial_ws_cfg, run_and_drain, striped_placement, tps};
use replimid_core::{Cluster, Placement, Policy};
use replimid_simnet::NodeId;
use replimid_workload::micro::DisjointInsert;

/// One E22 scaling cell: `b` disjoint table groups on `b` backends costed
/// at 4x CPU, six closed-loop fresh-key insert clients per group.
fn scaling_arm(b: usize, placement: Option<Placement>, secs: u64) -> f64 {
    let mut cfg = partial_ws_cfg(b, b, placement);
    cfg.mw.policy = Policy::RoundRobin;
    cfg.backend_speed = vec![4.0];
    let mut cluster = Cluster::build(cfg);
    let clients: Vec<NodeId> = (0..6 * b)
        .map(|i| {
            cluster.add_client(DisjointInsert::new(1_000_000 * (i as i64 + 1), i % b), |cc| {
                cc.think_time_us = 200;
                cc.request_timeout_us = 2_000_000;
            })
        })
        .collect();
    run_and_drain(&mut cluster, secs);
    tps(aggregate(&mut cluster, &clients).committed, secs)
}

/// The compatibility arm: 3 groups on 3 backends, one client per group.
fn identity_arm(
    placement: Option<Placement>,
    secs: u64,
) -> (replimid_core::MwMetrics, Vec<Vec<u64>>, usize) {
    let mut cfg = partial_ws_cfg(3, 3, placement);
    cfg.seed = 21;
    let mut cluster = Cluster::build(cfg);
    for g in 0..3usize {
        cluster.add_client(DisjointInsert::new(1_000_000 * (g as i64 + 1), g), |cc| {
            cc.think_time_us = 800;
        });
    }
    run_and_drain(&mut cluster, secs);
    let sums = cluster.backend_full_checksums();
    let groups = cluster.with_middleware(0, |m| m.partial_groups());
    (cluster.mw_metrics(0), sums, groups)
}

fn main() {
    let test_mode = std::env::args().any(|a| a == "--test");
    let secs: u64 = if test_mode { 1 } else { 5 };

    // -- write scaling, global vs striped partial ----------------------
    let mut rows = Vec::new();
    let mut ratio_at_8 = 0.0f64;
    for b in [2usize, 4, 8] {
        let global = scaling_arm(b, None, secs);
        let partial = scaling_arm(b, Some(striped_placement(b, b, 1)), secs);
        let ratio = partial / global.max(1e-9);
        println!("backends {b}: global {global:.0} tps, partial {partial:.0} tps ({ratio:.2}x)");
        if b == 8 {
            ratio_at_8 = ratio;
        }
        rows.push(format!(
            "    {{\"backends\": {b}, \"global_tps\": {global:.0}, \
             \"partial_tps\": {partial:.0}, \"ratio\": {ratio:.2}}}"
        ));
    }
    assert!(
        ratio_at_8 > 2.0,
        "partial replication no longer scales: {ratio_at_8:.2}x at 8 backends (need > 2x)"
    );

    // -- trivial-placement byte-identity -------------------------------
    let (mw_none, sums_none, groups_none) = identity_arm(None, secs);
    let (mw_none2, sums_none2, _) = identity_arm(None, secs);
    assert_eq!(mw_none.counters, mw_none2.counters, "no-placement arm not bit-identical");
    assert_eq!(sums_none, sums_none2, "no-placement checksums not bit-identical");
    let trivial = Placement::new(vec![vec![0, 1, 2]]).assign("t0", 0).assign("t1", 0);
    let (mw_triv, sums_triv, groups_triv) = identity_arm(Some(trivial), secs);
    assert_eq!(groups_none, 1);
    assert_eq!(groups_triv, 1, "trivial placement was not normalized away");
    assert_eq!(mw_none.counters, mw_triv.counters, "trivial placement perturbs counters");
    assert_eq!(mw_none.certifier, mw_triv.certifier, "trivial placement perturbs certifier");
    assert_eq!(sums_none, sums_triv, "trivial placement perturbs backend contents");
    println!("trivial-placement identity: counters, certifier stats, and checksums all equal");

    if !test_mode {
        let json = format!(
            "{{\n  \"bench\": \"pr9_partial_replication\",\n  \
             \"scaling\": [\n{}\n  ],\n  \
             \"ratio_at_8_backends\": {ratio_at_8:.2},\n  \
             \"trivial_placement_identity\": true\n}}\n",
            rows.join(",\n"),
        );
        std::fs::write("BENCH_pr9.json", &json).expect("write BENCH_pr9.json");
        println!("wrote BENCH_pr9.json");
    }
}
