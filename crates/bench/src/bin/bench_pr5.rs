//! PR5 perf trajectory: the E18 group-commit operating points, re-measured
//! through the [`timing`] harness and emitted as `BENCH_pr5.json` in the
//! working directory so successive PRs can track throughput and latency at
//! fixed points instead of eyeballing experiment tables.
//!
//! Usage:
//!   cargo run --release -p replimid-bench --bin bench_pr5
//!
//! With `--test` each point runs once (smoke mode) and no JSON is written,
//! matching the other timing benches.

use replimid_bench::timing::Runner;
use replimid_bench::{group_commit_cfg, run_and_drain, tps, ShardedInsert};
use replimid_core::{Cluster, MwMetrics};

/// Virtual seconds per measurement run. Short on purpose: the JSON tracks
/// trend direction across PRs, not publication-grade numbers (E18 does the
/// full sweep).
const SECS: u64 = 3;

fn run_point(clients: usize, think_us: u64, batch_max: usize, deadline_us: u64) -> MwMetrics {
    let mut cluster = Cluster::build(group_commit_cfg(batch_max, deadline_us));
    for i in 0..clients {
        cluster.add_client(ShardedInsert::new(10_000_000 * (i as i64 + 1)), |cc| {
            cc.think_time_us = think_us;
            cc.request_timeout_us = 2_000_000;
        });
    }
    run_and_drain(&mut cluster, SECS);
    cluster.mw_metrics(0)
}

fn main() {
    let test_mode = std::env::args().any(|a| a == "--test");
    let mut r = Runner::from_args();
    // The corners of the E18 sweep: batching off vs the batch=8/200µs sweet
    // spot, at the lightest and heaviest load. The low-load pair prices the
    // deadline wait; the saturated pair is the headline speedup.
    let points: [(&str, usize, u64, usize, u64); 4] = [
        ("low_off", 2, 5_000, 1, 0),
        ("low_b8_d200", 2, 5_000, 8, 200),
        ("saturated_off", 32, 100, 1, 0),
        ("saturated_b8_d200", 32, 100, 8, 200),
    ];
    let mut rows = Vec::new();
    for (name, clients, think_us, batch_max, deadline_us) in points {
        let mut last: Option<MwMetrics> = None;
        r.bench(name, 1, || {
            last = Some(run_point(clients, think_us, batch_max, deadline_us));
        });
        // The simulator is deterministic, so every sample sees the same
        // virtual-time metrics; keep the last run's.
        let mw = last.expect("bench closure runs at least once");
        rows.push(format!(
            "    {{\"point\": \"{name}\", \"clients\": {clients}, \"think_us\": {think_us}, \
             \"batch_max\": {batch_max}, \"deadline_us\": {deadline_us}, \
             \"write_tps\": {:.1}, \"p50_us\": {}, \"p99_us\": {}}}",
            tps(mw.counters.writes, SECS),
            mw.write_latency.quantile_us(0.5),
            mw.write_latency.quantile_us(0.99),
        ));
    }
    r.finish();
    if !test_mode {
        let json = format!(
            "{{\n  \"bench\": \"pr5_group_commit\",\n  \"virtual_secs\": {SECS},\n  \
             \"points\": [\n{}\n  ]\n}}\n",
            rows.join(",\n")
        );
        std::fs::write("BENCH_pr5.json", &json).expect("write BENCH_pr5.json");
        println!("wrote BENCH_pr5.json");
    }
}
