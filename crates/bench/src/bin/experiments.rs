//! The experiment harness: regenerates every experiment in DESIGN.md's
//! per-experiment index (E1..E19). The paper itself is an experience paper
//! with no measurement figures — these experiments realize the scenarios of
//! its Figures 1-4 and the evaluation agenda of §5.1 (fault injection,
//! MTTF/MTTR, behaviour at low load, management-operation cost).
//!
//! Usage:
//!   cargo run -p replimid-bench --bin experiments --release            # all
//!   cargo run -p replimid-bench --bin experiments --release -- E3 E9  # some

use replimid_bench::{
    aggregate, group_commit_cfg, mm_statement_cfg, partial_ws_cfg, run_and_drain, striped_placement,
    tps, SeqInsert, ShardedInsert, Table,
};
use replimid_core::{
    AdminCmd, BackendId, Cluster, ClusterConfig, FleetMetrics, HealthEvent, Mode, MwMetrics,
    NondetPolicy, PartitionScheme, Partitioner, Placement, Policy, QuarantineConfig, ReadPolicy,
    ReplayMode, ScriptSource, Stage, TraceSink,
};
use replimid_gcs::{
    Action, AdaptiveConfig, GcsConfig, GroupMember, HeartbeatConfig, MemberId, OrderProtocol,
};
use replimid_simnet::{dur, LinkFault, LinkSpec, NetworkModel, NodeId, SimTime};
use replimid_sql::{CrashKind, DurabilityConfig};
use replimid_workload::{micro, FaultSchedule, GrayFaultSchedule, GrayKind, GraySpec};

fn main() {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let all = [
        "E1", "E2", "E3", "E4", "E5", "E6", "E7", "E8", "E9", "E10", "E11", "E12", "E13",
        "E14", "E15", "E16", "E17", "E18", "E19", "E20", "E21", "E22", "E23",
    ];
    let selected: Vec<&str> = if args.is_empty() {
        all.to_vec()
    } else {
        all.iter().copied().filter(|e| args.iter().any(|a| a.eq_ignore_ascii_case(e))).collect()
    };
    for e in selected {
        match e {
            "E1" => e1_read_scaleout(),
            "E2" => e2_partitioned_writes(),
            "E3" => e3_hot_standby(),
            "E4" => e4_wan(),
            "E5" => e5_multimaster_saturation(),
            "E6" => e6_statement_vs_writeset(),
            "E7" => e7_load_balancing(),
            "E8" => e8_low_load_overhead(),
            "E9" => e9_recovery(),
            "E10" => e10_consistency_spectrum(),
            "E11" => e11_failure_detection(),
            "E12" => e12_availability_campaign(),
            "E13" => e13_backup(),
            "E14" => e14_group_communication(),
            "E15" => e15_slave_lag(),
            "E16" => e16_gray_failure_campaign(),
            "E17" => e17_latency_attribution(),
            "E18" => e18_group_commit(),
            "E19" => e19_freshness_routing(),
            "E20" => e20_durability(),
            "E21" => e21_plan_cache(),
            "E22" => e22_partial_replication(),
            "E23" => e23_elasticity(),
            _ => unreachable!(),
        }
    }
}

fn banner(id: &str, title: &str) {
    println!("================================================================");
    println!("{id}: {title}");
    println!("================================================================");
}

// ---------------------------------------------------------------------
// E1 — Fig. 1: master-slave read scale-out (ticket-broker 95/5 mix)
// ---------------------------------------------------------------------

fn e1_read_scaleout() {
    banner("E1", "master-slave read scale-out, 95/5 broker mix (Fig. 1)");
    let mut t = Table::new(&["slaves", "clients", "read tps", "write tps", "total tps"]);
    for slaves in [1usize, 2, 4, 6] {
        let mut cfg = ClusterConfig::new(
            Mode::MasterSlave {
                two_safe: false,
                ship_interval_us: 20_000,
                use_writesets: false,
                parallel_apply: false,
                read_master: false,
            },
            replimid_workload::broker::schema("bench", 200),
            "bench",
        );
        cfg.backends_per_mw = slaves + 1;
        let mut cluster = Cluster::build(cfg);
        // Scaled load, as the papers the authors criticize do: clients grow
        // with the replica count so the cluster runs near capacity.
        let clients: Vec<NodeId> = (0..slaves * 8)
            .map(|i| {
                cluster.add_client(
                    replimid_workload::Broker::new(200, 0.05, i as u64 + 1),
                    |cc| cc.think_time_us = 300,
                )
            })
            .collect();
        let secs = 5;
        run_and_drain(&mut cluster, secs);
        let agg = aggregate(&mut cluster, &clients);
        let mw = cluster.mw_metrics(0);
        let reads = mw.counters.reads;
        let writes = mw.counters.writes;
        t.row(&[
            slaves.to_string(),
            clients.len().to_string(),
            format!("{:.0}", tps(reads, secs)),
            format!("{:.0}", tps(writes, secs)),
            format!("{:.0}", tps(agg.committed, secs)),
        ]);
    }
    t.print();
}

// ---------------------------------------------------------------------
// E2 — Fig. 2: partitioning for write scalability
// ---------------------------------------------------------------------

fn e2_partitioned_writes() {
    banner("E2", "hash partitioning for write throughput (Fig. 2)");
    let mut t = Table::new(&["partitions", "write tps", "speedup"]);
    let mut base_tps = 0.0;
    for parts in [1usize, 2, 4, 8] {
        let mut partitioner = Partitioner::new();
        partitioner.add_table(
            "bench",
            PartitionScheme::Hash { column: "k".into(), partitions: parts },
        );
        let groups: Vec<Vec<BackendId>> = (0..parts).map(|p| vec![BackendId(p)]).collect();
        let schema = vec![
            "CREATE DATABASE bench".to_string(),
            "USE bench".to_string(),
            "CREATE TABLE bench (k INT PRIMARY KEY, v INT NOT NULL)".to_string(),
        ];
        let mut cfg = ClusterConfig::new(
            Mode::PartitionedStatement { partitioner, groups },
            schema,
            "bench",
        );
        cfg.backends_per_mw = parts;
        let mut cluster = Cluster::build(cfg);
        let clients: Vec<NodeId> = (0..parts * 6)
            .map(|i| {
                cluster.add_client(SeqInsert::new(1_000_000 * (i as i64 + 1)), |cc| {
                    cc.think_time_us = 100
                })
            })
            .collect();
        let secs = 4;
        run_and_drain(&mut cluster, secs);
        let agg = aggregate(&mut cluster, &clients);
        let this_tps = tps(agg.committed, secs);
        if parts == 1 {
            base_tps = this_tps;
        }
        t.row(&[
            parts.to_string(),
            format!("{this_tps:.0}"),
            format!("{:.2}x", this_tps / base_tps),
        ]);
    }
    t.print();
}

// ---------------------------------------------------------------------
// E3 — Fig. 3: hot standby failover; 1-safe vs 2-safe
// ---------------------------------------------------------------------

fn e3_hot_standby() {
    banner("E3", "hot standby failover: 1-safe vs 2-safe (Fig. 3, §2.2)");
    let mut t = Table::new(&[
        "safety", "commit p50 us", "commit p99 us", "failover ms", "lost txns", "MTTR ms",
        "availability",
    ]);
    for two_safe in [false, true] {
        let mut cfg = ClusterConfig::new(
            Mode::MasterSlave {
                two_safe,
                ship_interval_us: 20_000,
                use_writesets: false,
                parallel_apply: false,
                read_master: true,
            },
            micro::schema("bench", 100),
            "bench",
        );
        cfg.backends_per_mw = 2;
        let mut cluster = Cluster::build(cfg);
        let c = cluster.add_client(SeqInsert::new(1_000), |cc| {
            cc.think_time_us = 1_000;
            cc.request_timeout_us = 400_000;
            cc.tx_limit = 5_000;
        });
        let crash_at = SimTime::from_secs(3);
        cluster.crash_backend_at(crash_at, 0, 0);
        run_and_drain(&mut cluster, 8);
        let m = cluster.client_metrics(c);
        let mw = cluster.mw_metrics(0);
        let failover_ms = mw
            .failover_times
            .first()
            .map(|&t| (t.saturating_sub(crash_at.micros())) as f64 / 1_000.0)
            .unwrap_or(0.0);
        t.row(&[
            if two_safe { "2-safe" } else { "1-safe" }.to_string(),
            m.stmt_latency.quantile_us(0.5).to_string(),
            m.stmt_latency.quantile_us(0.99).to_string(),
            format!("{failover_ms:.0}"),
            mw.counters.lost_transactions.to_string(),
            format!("{:.0}", mw.availability.mttr_us() / 1_000.0),
            format!("{:.5}", mw.availability.availability()),
        ]);
    }
    t.print();
    println!("  (2-safe: zero loss, higher commit latency — the §2.2 tradeoff)\n");
}

// ---------------------------------------------------------------------
// E4 — Fig. 4: WAN replication
// ---------------------------------------------------------------------

fn wan_overrides(cluster: &mut Cluster, sites: usize, backends_per_site: usize) {
    // Node layout: db nodes grouped per middleware, then middlewares, then
    // clients. Site i owns db group i, middleware i, client i.
    let total_db = sites * backends_per_site;
    let site_of = move |n: NodeId| -> usize {
        if n.0 < total_db {
            n.0 / backends_per_site
        } else if n.0 < total_db + sites {
            n.0 - total_db
        } else {
            (n.0 - total_db - sites) % sites
        }
    };
    let all: Vec<NodeId> = (0..cluster.sim.node_count()).map(NodeId).collect();
    for &a in &all {
        for &b in &all {
            if a != b && site_of(a) != site_of(b) {
                cluster.sim.net.set_link(a, b, LinkSpec::wan());
            }
        }
    }
}

fn e4_wan() {
    banner("E4", "WAN multi-site replication (Fig. 4, §4.3.4.1)");
    let schema = vec![
        "CREATE DATABASE bench".to_string(),
        "USE bench".to_string(),
        "CREATE TABLE bench (k INT PRIMARY KEY, v INT NOT NULL)".to_string(),
    ];
    let mut t = Table::new(&["configuration", "write p50 us", "write p99 us", "tps"]);

    // (a) Synchronous multi-master over LAN vs WAN: total order pays the
    // intercontinental RTT on every write.
    for wan in [false, true] {
        let mut cfg = ClusterConfig::new(
            Mode::MultiMasterStatement { nondet: NondetPolicy::RewriteAndReject },
            schema.clone(),
            "bench",
        );
        cfg.middlewares = 3;
        cfg.backends_per_mw = 1;
        let mut cluster = Cluster::build(cfg);
        if wan {
            wan_overrides(&mut cluster, 3, 1);
        }
        let clients: Vec<NodeId> = (0..3)
            .map(|i| {
                cluster.add_client(SeqInsert::new(10_000_000 * (i + 1)), |cc| {
                    cc.think_time_us = 2_000;
                    cc.tx_limit = 400;
                })
            })
            .collect();
        let secs = 20;
        run_and_drain(&mut cluster, secs);
        let agg = aggregate(&mut cluster, &clients);
        t.row(&[
            format!("sync multi-master, {}", if wan { "WAN" } else { "LAN" }),
            format!("{:.0}", agg.mean_stmt_us),
            agg.p99_tx_us.to_string(),
            format!("{:.0}", tps(agg.committed, secs)),
        ]);
    }

    // (b) Geo-local master with asynchronous WAN slaves (the practical
    // deployment the paper says everyone converges on): local-latency
    // commits; remote copies trail by the shipping interval + WAN hop.
    {
        let mut cfg = ClusterConfig::new(
            Mode::MasterSlave {
                two_safe: false,
                ship_interval_us: 50_000,
                use_writesets: false,
                parallel_apply: false,
                read_master: true,
            },
            schema.clone(),
            "bench",
        );
        cfg.backends_per_mw = 3; // master local, 2 slaves "overseas"
        let mut cluster = Cluster::build(cfg);
        // Slaves (db nodes 1, 2) are across the WAN from everything else.
        let all: Vec<NodeId> = (0..cluster.sim.node_count()).map(NodeId).collect();
        for &a in &all {
            for &b in &all {
                let remote =
                    |n: NodeId| n.0 == 1 || n.0 == 2;
                if a != b && remote(a) != remote(b) {
                    cluster.sim.net.set_link(a, b, LinkSpec::wan());
                }
            }
        }
        let c = cluster.add_client(SeqInsert::new(50_000_000), |cc| {
            cc.think_time_us = 2_000;
            cc.tx_limit = 2_000;
        });
        let secs = 8;
        run_and_drain(&mut cluster, secs);
        let agg = aggregate(&mut cluster, &[c]);
        t.row(&[
            "async geo master-slave (1-safe)".to_string(),
            format!("{:.0}", agg.mean_stmt_us),
            agg.p99_tx_us.to_string(),
            format!("{:.0}", tps(agg.committed, secs)),
        ]);
        let mw = cluster.mw_metrics(0);
        let max_lag = mw.lag_samples.iter().map(|&(_, l)| l).max().unwrap_or(0);
        println!("  async mode peak staleness: {max_lag} unshipped commits (bounded loss window)");
    }
    t.print();
}

// ---------------------------------------------------------------------
// E5 — multi-master update saturation (Gray's warning)
// ---------------------------------------------------------------------

fn e5_multimaster_saturation() {
    banner("E5", "multi-master scaling flattens with write fraction (§2.1, Gray [18])");
    let mut t = Table::new(&["replicas", "5% writes tps", "20% writes tps", "50% writes tps", "100% writes tps"]);
    for replicas in [1usize, 2, 4, 6] {
        let mut cells = vec![replicas.to_string()];
        for wf in [0.05, 0.2, 0.5, 1.0] {
            let mut cfg = mm_statement_cfg(500);
            cfg.backends_per_mw = replicas;
            let mut cluster = Cluster::build(cfg);
            let clients: Vec<NodeId> = (0..replicas * 8)
                .map(|_| {
                    cluster.add_client(
                        micro::ReadWriteMix { total_keys: 500, write_fraction: wf },
                        |cc| cc.think_time_us = 150,
                    )
                })
                .collect();
            let secs = 4;
            run_and_drain(&mut cluster, secs);
            let agg = aggregate(&mut cluster, &clients);
            cells.push(format!("{:.0}", tps(agg.committed, secs)));
        }
        t.row(&cells);
    }
    t.print();
    println!("  (read-heavy mixes scale with replicas; at 100% writes every replica\n   applies every update and adding replicas stops helping)\n");
}

// ---------------------------------------------------------------------
// E6 — statement vs writeset replication
// ---------------------------------------------------------------------

fn e6_statement_vs_writeset() {
    banner("E6", "statement vs writeset replication (§4.3.2)");

    // (a) Non-determinism: naive statement broadcast diverges; rewriting
    // fixes time macros; writeset replication is immune.
    let mut t = Table::new(&["mode", "policy", "now() safe", "rand()-per-row safe"]);
    let diverged = |cluster: &mut Cluster| {
        let sums = cluster.backend_checksums();
        let flat: Vec<u64> = sums.iter().flatten().copied().collect();
        flat.windows(2).any(|w| w[0] != w[1])
    };
    for (label, mode) in [
        ("statement", Mode::MultiMasterStatement { nondet: NondetPolicy::Ignore }),
        ("statement", Mode::MultiMasterStatement { nondet: NondetPolicy::RewriteBestEffort }),
        ("writeset", Mode::MultiMasterWriteset),
    ] {
        let policy = match &mode {
            Mode::MultiMasterStatement { nondet } => format!("{nondet:?}"),
            _ => "n/a (row images)".to_string(),
        };
        let mut results = Vec::new();
        for sql in [
            "UPDATE bench SET v = now() WHERE k < 50",
            "UPDATE bench SET v = floor(rand() * 1000)",
        ] {
            let mut schema = micro::schema("bench", 100);
            // now() writes a TIMESTAMP into an INT column; give v a wide type.
            schema[2] = "CREATE TABLE bench (k INT PRIMARY KEY, v INT)".to_string();
            let cfg = ClusterConfig::new(mode.clone(), schema, "bench");
            let mut cluster = Cluster::build(cfg);
            let src = ScriptSource::new(vec![vec![sql.to_string()]]);
            let c = cluster.add_client(src, |cc| {
                cc.tx_limit = 5;
                cc.think_time_us = 3_000;
            });
            run_and_drain(&mut cluster, 2);
            let _ = cluster.client_metrics(c);
            results.push(if diverged(&mut cluster) { "DIVERGED" } else { "ok" });
        }
        t.row(&[label.to_string(), policy, results[0].to_string(), results[1].to_string()]);
    }
    t.print();

    // (b) Throughput crossover: a one-row update ships cheaply as a
    // statement or a writeset; a fat range update is one short statement
    // but a large writeset.
    let mut t = Table::new(&["workload", "statement tps", "writeset tps"]);
    for (label, sql) in [
        ("1-row update", "UPDATE bench SET v = v + 1 WHERE k = 7".to_string()),
        ("500-row update", "UPDATE bench SET v = v + 1 WHERE k >= 0".to_string()),
    ] {
        let mut cells = vec![label.to_string()];
        for mode in [
            Mode::MultiMasterStatement { nondet: NondetPolicy::RewriteAndReject },
            Mode::MultiMasterWriteset,
        ] {
            let cfg = ClusterConfig::new(mode, micro::schema("bench", 500), "bench");
            let mut cluster = Cluster::build(cfg);
            let src = ScriptSource::new(vec![vec![sql.clone()]]);
            let c = cluster.add_client(src, |cc| cc.think_time_us = 200);
            let secs = 4;
            run_and_drain(&mut cluster, secs);
            let m = cluster.client_metrics(c);
            cells.push(format!("{:.0}", tps(m.committed, secs)));
        }
        t.row(&cells);
    }
    t.print();
}

// ---------------------------------------------------------------------
// E7 — load balancing policies on a heterogeneous cluster
// ---------------------------------------------------------------------

fn e7_load_balancing() {
    banner("E7", "load balancing: granularity x policy, one 4x-slow replica (§3.2, §4.1.3)");
    let mut t = Table::new(&["granularity", "policy", "read tps", "p99 us"]);
    use replimid_core::Granularity;
    for (glabel, gran) in [
        ("connection", Granularity::Connection),
        ("transaction", Granularity::Transaction),
        ("query", Granularity::Query),
    ] {
        for (plabel, policy) in [
            ("round-robin", Policy::RoundRobin),
            ("LPRF", Policy::Lprf),
            ("weighted 4:4:1", Policy::Weighted(vec![4, 4, 1])),
        ] {
            let mut cfg = mm_statement_cfg(300);
            cfg.backends_per_mw = 3;
            cfg.backend_speed = vec![1.0, 1.0, 4.0];
            cfg.mw.granularity = gran;
            cfg.mw.policy = policy;
            let mut cluster = Cluster::build(cfg);
            let clients: Vec<NodeId> = (0..10)
                .map(|_| {
                    cluster.add_client(micro::PointReads { total_keys: 300 }, |cc| {
                        cc.think_time_us = 200
                    })
                })
                .collect();
            let secs = 4;
            run_and_drain(&mut cluster, secs);
            let agg = aggregate(&mut cluster, &clients);
            t.row(&[
                glabel.to_string(),
                plabel.to_string(),
                format!("{:.0}", tps(agg.committed, secs)),
                agg.p99_tx_us.to_string(),
            ]);
        }
    }
    t.print();
}

// ---------------------------------------------------------------------
// E8 — latency overhead at low load (§4.4.5)
// ---------------------------------------------------------------------

fn e8_low_load_overhead() {
    banner("E8", "replication overhead at low load; sequential batch jobs (§4.4.5)");
    let mut t = Table::new(&["configuration", "write p50 us", "batch of 2000 (ms)"]);
    // Modeled direct access: one LAN round trip + statement cost, no
    // middleware hop. (What the customer had before buying replication.)
    let direct_p50 = 2.0 * 125.0 + 60.0;
    let batch_n = 2_000u64;
    t.row(&[
        "direct to single DB (modeled)".to_string(),
        format!("{direct_p50:.0}"),
        format!("{:.0}", batch_n as f64 * (direct_p50 + 1.0) / 1_000.0),
    ]);
    for (label, mode, backends) in [
        (
            "middleware, 1 replica",
            Mode::MultiMasterStatement { nondet: NondetPolicy::RewriteAndReject },
            1usize,
        ),
        (
            "statement repl, 3 replicas",
            Mode::MultiMasterStatement { nondet: NondetPolicy::RewriteAndReject },
            3,
        ),
        ("writeset repl, 3 replicas", Mode::MultiMasterWriteset, 3),
    ] {
        let mut cfg = ClusterConfig::new(mode, micro::schema("bench", batch_n as usize), "bench");
        cfg.backends_per_mw = backends;
        let mut cluster = Cluster::build(cfg);
        // One single-threaded batch client: pure latency exposure.
        let c = cluster.add_client(replimid_workload::BatchUpdate::new(batch_n as i64), |cc| {
            cc.think_time_us = 1;
            cc.tx_limit = batch_n;
        });
        let start = cluster.now();
        cluster.run_for(dur::secs(60));
        let m = cluster.client_metrics(c);
        // Time to finish the batch: last commit second observed.
        let done_at = m
            .commits_per_sec
            .keys()
            .next_back()
            .map(|&s| (s + 1) * 1_000_000)
            .unwrap_or(start.micros());
        let batch_ms = m.tx_latency.mean_us() * m.committed as f64 / 1_000.0;
        let _ = done_at;
        t.row(&[
            label.to_string(),
            m.stmt_latency.quantile_us(0.5).to_string(),
            format!("{batch_ms:.0}"),
        ]);
    }
    t.print();
    println!("  (sub-millisecond statements pay the largest *relative* latency tax;\n   a strictly sequential batch multiplies it by its length)\n");
}

// ---------------------------------------------------------------------
// E9 — replica rejoin: serial vs parallel replay; catch-up under load
// ---------------------------------------------------------------------

fn e9_recovery() {
    banner("E9", "rejoin via recovery log: outage length x replay mode (§4.4.2)");
    let mut t = Table::new(&["outage ms", "replay", "log entries", "rejoin ms"]);
    for outage_ms in [500u64, 1_500, 3_000] {
        for (rlabel, rmode) in [("serial", ReplayMode::Serial), ("parallel", ReplayMode::Parallel)] {
            let mut schema = vec![
                "CREATE DATABASE bench".to_string(),
                "USE bench".to_string(),
            ];
            // 4 disjoint tables give parallel replay room to win.
            for i in 0..4 {
                schema.push(format!("CREATE TABLE t{i} (k INT PRIMARY KEY, v INT)"));
            }
            let mut cfg = ClusterConfig::new(
                Mode::MultiMasterStatement { nondet: NondetPolicy::RewriteAndReject },
                schema,
                "bench",
            );
            cfg.mw.replay_mode = rmode;
            cfg.mw.recovery_batch = 256;
            let mut cluster = Cluster::build(cfg);
            struct MultiTable {
                next: i64,
            }
            impl replimid_core::TxSource for MultiTable {
                fn next_tx(&mut self, _r: &mut replimid_det::DetRng) -> Vec<String> {
                    let k = self.next;
                    self.next += 1;
                    vec![format!("INSERT INTO t{} VALUES ({k}, 1)", k % 4)]
                }
            }
            for i in 0..4 {
                cluster.add_client(MultiTable { next: 10_000_000 * (i + 1) }, |cc| {
                    cc.think_time_us = 400;
                });
            }
            cluster.crash_backend_at(SimTime::from_secs(1), 0, 2);
            cluster.restart_backend_at(SimTime::from_millis(1_000 + outage_ms), 0, 2);
            cluster.run_for(dur::secs(12));
            let mw = cluster.mw_metrics(0);
            let head = cluster.with_middleware(0, |m| m.log.head());
            let rejoin = mw
                .recoveries
                .iter()
                .find(|&&(b, _, _)| b == 2)
                .map(|&(_, s, e)| format!("{:.0}", (e - s) as f64 / 1e3))
                .unwrap_or_else(|| "STUCK".into());
            t.row(&[
                outage_ms.to_string(),
                rlabel.to_string(),
                head.to_string(),
                rejoin,
            ]);
        }
    }
    t.print();

    // Quantified replay-cost model (the §4.4.2 serial-vs-parallel gap) on a
    // synthetic log.
    let mut log = replimid_core::RecoveryLog::new();
    for i in 0..10_000u64 {
        log.append_sql(
            Some("bench".into()),
            format!("UPDATE t{} SET v = v + 1 WHERE k = {i}", i % 4),
            vec![format!("t{}", i % 4)],
        );
    }
    let entries = log.read_after(0, 20_000).unwrap();
    let serial = replimid_core::RecoveryLog::replay_cost_us(entries, ReplayMode::Serial, 80);
    let parallel = replimid_core::RecoveryLog::replay_cost_us(entries, ReplayMode::Parallel, 80);
    println!(
        "  modeled replay of 10k entries over 4 disjoint tables: serial {} ms, parallel {} ms ({:.1}x)\n",
        serial / 1_000,
        parallel / 1_000,
        serial as f64 / parallel as f64
    );
}

// ---------------------------------------------------------------------
// E10 — consistency spectrum: abort rates vs conflict rate
// ---------------------------------------------------------------------

fn e10_consistency_spectrum() {
    banner("E10", "consistency spectrum: aborts/tps vs conflict rate (§3.3)");
    let mut t = Table::new(&["conflict", "scheme", "tps", "abort ratio"]);
    for (clabel, hot_keys, hot_frac) in [
        ("low", 400i64, 0.1f64),
        ("medium", 20, 0.5),
        ("high", 4, 0.9),
    ] {
        for (slabel, mode, isolation) in [
            (
                "statement+RC",
                Mode::MultiMasterStatement { nondet: NondetPolicy::RewriteAndReject },
                None,
            ),
            ("writeset+SI", Mode::MultiMasterWriteset, Some("SNAPSHOT")),
            ("writeset+1SR", Mode::MultiMasterWriteset, Some("SERIALIZABLE")),
        ] {
            let cfg = ClusterConfig::new(mode, micro::schema("bench", 400), "bench");
            let mut cluster = Cluster::build(cfg);
            let clients: Vec<NodeId> = (0..6)
                .map(|_| {
                    let mut w = micro::KeyedUpdates::contended(400, hot_keys, hot_frac);
                    w.isolation = isolation;
                    cluster.add_client(w, |cc| {
                        cc.think_time_us = 500;
                        cc.max_retries = 20;
                    })
                })
                .collect();
            let secs = 4;
            run_and_drain(&mut cluster, secs);
            let agg = aggregate(&mut cluster, &clients);
            let total = agg.committed + agg.aborted;
            t.row(&[
                clabel.to_string(),
                slabel.to_string(),
                format!("{:.0}", tps(agg.committed, secs)),
                format!("{:.3}", agg.aborted as f64 / total.max(1) as f64),
            ]);
        }
    }
    t.print();
}

// ---------------------------------------------------------------------
// E11 — failure detection timeout tradeoff
// ---------------------------------------------------------------------

fn e11_failure_detection() {
    banner("E11", "failure detector timeouts: detection time vs false positives (§4.3.4.2)");
    let mut t = Table::new(&["timeout", "detection ms", "false positives under load"]);
    for (label, timeout_us) in [
        ("50 ms", 50_000u64),
        ("100 ms", 100_000),
        ("500 ms", 500_000),
        ("2 s", 2_000_000),
        ("75 s (TCP default)", 75_000_000),
    ] {
        // (a) Detection time after a real crash.
        let mut cfg = ClusterConfig::new(
            Mode::MasterSlave {
                two_safe: false,
                ship_interval_us: 50_000,
                use_writesets: false,
                parallel_apply: false,
                read_master: true,
            },
            micro::schema("bench", 50),
            "bench",
        );
        cfg.backends_per_mw = 2;
        cfg.mw.heartbeat = HeartbeatConfig { interval_us: 20_000, timeout_us };
        cfg.mw.op_timeout_us = timeout_us.max(1_000_000) * 2;
        let mut cluster = Cluster::build(cfg);
        cluster.add_client(SeqInsert::new(1_000), |cc| {
            cc.think_time_us = 2_000;
            cc.request_timeout_us = timeout_us.max(200_000) * 2;
        });
        let crash_at = SimTime::from_secs(2);
        cluster.crash_backend_at(crash_at, 0, 0);
        cluster.run_for(dur::secs(2) + timeout_us * 2 + dur::secs(1));
        let mw = cluster.mw_metrics(0);
        let detection = mw
            .failover_times
            .first()
            .map(|&t| (t.saturating_sub(crash_at.micros())) as f64 / 1_000.0);

        // (b) False positives: no crash, but one replica saturated by a hot
        // backup (load-induced silence — the §4.3.4.2 hazard).
        let mut cfg = mm_statement_cfg(4_000);
        cfg.mw.heartbeat = HeartbeatConfig { interval_us: 20_000, timeout_us };
        cfg.mw.op_timeout_us = timeout_us.max(2_000_000) * 4;
        let mut cluster = Cluster::build(cfg);
        for i in 0..6 {
            cluster.add_client(SeqInsert::new(1_000_000 * (i + 1)), |cc| {
                cc.think_time_us = 150;
            });
        }
        // Repeated hot backups keep backend 1 busy for long stretches.
        for k in 0..8 {
            cluster.admin_at(
                SimTime::from_millis(500 + k * 400),
                0,
                AdminCmd::Backup { backend: BackendId(1), hot: true },
            );
        }
        cluster.run_for(dur::secs(5));
        let mw2 = cluster.mw_metrics(0);
        t.row(&[
            label.to_string(),
            detection.map(|d| format!("{d:.0}")).unwrap_or_else(|| "not detected".into()),
            mw2.counters.failovers.to_string(),
        ]);
    }
    t.print();
    println!("  (short timeouts detect fast but fail healthy-but-slow replicas;\n   the TCP default never notices within the run — §4.3.4.2)\n");
}

// ---------------------------------------------------------------------
// E12 — availability campaign with Poisson fault injection
// ---------------------------------------------------------------------

fn e12_availability_campaign() {
    banner("E12", "availability campaign: Poisson faults, MTTF/MTTR/nines (§5.1)");
    let mut t = Table::new(&[
        "replicas", "faults", "outages", "MTTF s", "MTTR ms", "availability", "nines", "tps",
    ]);
    for replicas in [1usize, 2, 3] {
        let mut cfg = mm_statement_cfg(200);
        cfg.backends_per_mw = replicas;
        let mut cluster = Cluster::build(cfg);
        let clients: Vec<NodeId> = (0..4)
            .map(|i| {
                cluster.add_client(SeqInsert::new(1_000_000 * (i as i64 + 1)), |cc| {
                    cc.think_time_us = 1_000;
                    cc.request_timeout_us = 250_000;
                })
            })
            .collect();
        // Accelerated fault process: compress ~months of the paper's
        // 1/day/200-CPU rate into 30 virtual seconds.
        let mut rng = replimid_det::DetRng::seed_from_u64(7 + replicas as u64);
        let horizon = dur::secs(30);
        let schedule =
            FaultSchedule::poisson(&mut rng, replicas, horizon, 3_000_000.0, dur::millis(800));
        let fault_count = schedule.len();
        for f in &schedule.faults {
            cluster.crash_backend_at(f.crash_at, 0, f.node);
            cluster.restart_backend_at(f.restart_at, 0, f.node);
        }
        cluster.run_for(horizon);
        cluster.run_for(dur::secs(2));
        let agg = aggregate(&mut cluster, &clients);
        let mw = cluster.mw_metrics(0);
        t.row(&[
            replicas.to_string(),
            fault_count.to_string(),
            mw.availability.outage_count().to_string(),
            format!("{:.1}", mw.availability.mttf_us() / 1e6),
            format!("{:.0}", mw.availability.mttr_us() / 1e3),
            format!("{:.6}", mw.availability.availability()),
            format!("{:.2}", mw.availability.nines()),
            format!("{:.0}", tps(agg.committed, 30)),
        ]);
    }
    t.print();
    println!("  (replication converts node faults into brief degraded periods; a\n   single replica turns every fault into client-visible downtime)\n");
}

// ---------------------------------------------------------------------
// E13 — backup: cold vs hot
// ---------------------------------------------------------------------

fn e13_backup() {
    banner("E13", "backup: cold (remove+rejoin) vs hot (degrade in place) (§4.4.1)");
    let mut t = Table::new(&["mode", "backup ms", "tps before", "tps during", "tps after"]);
    for hot in [false, true] {
        let mut cfg = mm_statement_cfg(5_000);
        let mut cluster = Cluster::build(cfg.clone());
        let clients: Vec<NodeId> = (0..6)
            .map(|i| {
                cluster.add_client(SeqInsert::new(1_000_000 * (i as i64 + 1)), |cc| {
                    cc.think_time_us = 300;
                })
            })
            .collect();
        cluster.admin_at(SimTime::from_secs(2), 0, AdminCmd::Backup { backend: BackendId(1), hot });
        cluster.run_for(dur::secs(6));
        let mw = cluster.mw_metrics(0);
        let (start, end) = mw
            .backups
            .first()
            .map(|&(s, e, _, _)| (s, e))
            .unwrap_or((2_000_000, 2_000_000));
        // Throughput before/during/after from per-second commit series.
        let mut before = 0u64;
        let mut during = 0u64;
        let mut after = 0u64;
        let (s_sec, e_sec) = (start / 1_000_000, end / 1_000_000 + 1);
        for &c in &clients {
            let m = cluster.client_metrics(c);
            for (&sec, &n) in &m.commits_per_sec {
                if sec < s_sec {
                    before += n;
                } else if sec <= e_sec {
                    during += n;
                } else {
                    after += n;
                }
            }
        }
        let before_secs = s_sec.max(1);
        let during_secs = (e_sec - s_sec + 1).max(1);
        let after_secs = (6u64.saturating_sub(e_sec + 1)).max(1);
        t.row(&[
            if hot { "hot" } else { "cold" }.to_string(),
            format!("{:.0}", (end - start) as f64 / 1e3),
            format!("{:.0}", before as f64 / before_secs as f64),
            format!("{:.0}", during as f64 / during_secs as f64),
            format!("{:.0}", after as f64 / after_secs as f64),
        ]);
        let _ = &mut cfg;
    }
    t.print();
}

// ---------------------------------------------------------------------
// E14 — group communication: sequencer vs token ring
// ---------------------------------------------------------------------

#[derive(Debug, Clone)]
enum GMsg {
    Gcs(replimid_gcs::GcsMsg<u64>),
    Publish(u64),
}

struct GNode {
    member: GroupMember<u64>,
    delivered: Vec<(u64, u64)>, // (publish time, deliver time) keyed by payload order
    sent_at: std::collections::HashMap<u64, u64>,
}

impl GNode {
    fn act(&mut self, ctx: &mut replimid_simnet::Ctx<'_, GMsg>, actions: Vec<Action<u64>>) {
        for a in actions {
            match a {
                Action::Send { to, msg } => ctx.send(NodeId(to.0), GMsg::Gcs(msg)),
                Action::SetTimer { delay_us, tag } => ctx.set_timer(delay_us, tag),
                Action::Deliver { payload, .. } => {
                    let now = ctx.now().micros();
                    let sent = self.sent_at.get(&payload).copied().unwrap_or(now);
                    self.delivered.push((sent, now));
                }
                _ => {}
            }
        }
    }
}

impl replimid_simnet::Actor<GMsg> for GNode {
    fn on_start(&mut self, ctx: &mut replimid_simnet::Ctx<'_, GMsg>) {
        let a = self.member.start(ctx.now().micros());
        self.act(ctx, a);
    }
    fn on_message(&mut self, ctx: &mut replimid_simnet::Ctx<'_, GMsg>, from: NodeId, msg: GMsg) {
        let now = ctx.now().micros();
        let actions = match msg {
            GMsg::Gcs(m) => self.member.on_message(MemberId(from.0), m, now),
            GMsg::Publish(p) => {
                self.sent_at.insert(p, now);
                self.member.publish(p, now)
            }
        };
        self.act(ctx, actions);
    }
    fn on_timer(&mut self, ctx: &mut replimid_simnet::Ctx<'_, GMsg>, tag: u64) {
        let a = self.member.on_timer(tag, ctx.now().micros());
        self.act(ctx, a);
    }
}

fn e14_group_communication() {
    banner("E14", "total order: fixed sequencer vs token ring, LAN vs WAN (§4.3.4.1)");
    let mut t = Table::new(&["net", "protocol", "group", "deliver p50 us", "deliver p99 us"]);
    for (nlabel, link) in [("LAN", LinkSpec::lan()), ("WAN", LinkSpec::wan())] {
        for (plabel, proto) in [
            ("sequencer", OrderProtocol::FixedSequencer),
            ("token ring", OrderProtocol::TokenRing),
        ] {
            for group in [2usize, 4, 8] {
                let mut sim: replimid_simnet::Sim<GMsg> =
                    replimid_simnet::Sim::new(NetworkModel::new(link), 99);
                let members: Vec<MemberId> = (0..group).map(MemberId).collect();
                let cfg = GcsConfig {
                    heartbeat: if matches!(nlabel, "WAN") {
                        HeartbeatConfig { interval_us: 100_000, timeout_us: 1_000_000 }
                    } else {
                        HeartbeatConfig::lan()
                    },
                    protocol: proto,
                    token_timeout_us: 2_000_000,
                    flush_timeout_us: 2_000_000,
                    adaptive: None,
                };
                let nodes: Vec<NodeId> = (0..group)
                    .map(|i| {
                        sim.add_node(GNode {
                            member: GroupMember::new(MemberId(i), members.clone(), cfg, 0),
                            delivered: Vec::new(),
                            sent_at: std::collections::HashMap::new(),
                        })
                    })
                    .collect();
                // Publish 50 messages from each member, spread out.
                let mut p = 0u64;
                for round in 0..50u64 {
                    for &n in &nodes {
                        p += 1;
                        sim.inject(SimTime(10_000 + round * 5_000), n, GMsg::Publish(p));
                    }
                }
                sim.run_until(SimTime::from_secs(30));
                // Delivery latency at the ORIGIN member (publish->self-deliver).
                let mut hist = replimid_core::Histogram::new();
                for &n in &nodes {
                    sim.with_actor::<GNode, _>(n, |g| {
                        for &(sent, got) in &g.delivered {
                            if g.sent_at.values().any(|&s| s == sent) {
                                hist.record(got.saturating_sub(sent));
                            }
                        }
                    });
                }
                t.row(&[
                    nlabel.to_string(),
                    plabel.to_string(),
                    group.to_string(),
                    hist.quantile_us(0.5).to_string(),
                    hist.quantile_us(0.99).to_string(),
                ]);
            }
        }
    }
    t.print();
    println!("  (sequencer latency is flat in group size; token-ring latency grows\n   with the ring — and the WAN multiplies everything, §4.3.4.1)\n");
}

// ---------------------------------------------------------------------
// E15 — slave lag: serial vs parallel apply; master throttling
// ---------------------------------------------------------------------

fn e15_slave_lag() {
    banner("E15", "slave lag under load: serial vs parallel apply (§2.2)");
    let mut t = Table::new(&["apply", "slave speed", "peak lag", "final lag"]);
    for (alabel, parallel) in [("serial", false), ("parallel", true)] {
        for (slabel, speed) in [("1x", 1.0f64), ("6x slower", 6.0)] {
            let schema = {
                let mut s = vec![
                    "CREATE DATABASE bench".to_string(),
                    "USE bench".to_string(),
                ];
                for i in 0..4 {
                    s.push(format!("CREATE TABLE t{i} (k INT PRIMARY KEY, v INT)"));
                }
                s
            };
            let mut cfg = ClusterConfig::new(
                Mode::MasterSlave {
                    two_safe: false,
                    ship_interval_us: 50_000,
                    use_writesets: true,
                    parallel_apply: parallel,
                    read_master: true,
                },
                schema,
                "bench",
            );
            cfg.backends_per_mw = 2;
            cfg.backend_speed = vec![1.0, speed];
            let mut cluster = Cluster::build(cfg);
            struct MultiTable {
                next: i64,
            }
            impl replimid_core::TxSource for MultiTable {
                fn next_tx(&mut self, _r: &mut replimid_det::DetRng) -> Vec<String> {
                    let k = self.next;
                    self.next += 1;
                    vec![format!("INSERT INTO t{} VALUES ({k}, 1)", k % 4)]
                }
            }
            for i in 0..6 {
                cluster.add_client(MultiTable { next: 10_000_000 * (i + 1) }, |cc| {
                    cc.think_time_us = 200;
                    cc.tx_limit = 4_000;
                });
            }
            // Writers run ~2s; then 4s of quiescence to observe catch-up.
            cluster.run_for(dur::secs(6));
            let mw = cluster.mw_metrics(0);
            let peak = mw.lag_samples.iter().map(|&(_, l)| l).max().unwrap_or(0);
            let last = mw.lag_samples.last().map(|&(_, l)| l).unwrap_or(0);
            t.row(&[
                alabel.to_string(),
                slabel.to_string(),
                peak.to_string(),
                last.to_string(),
            ]);
        }
    }
    t.print();
    println!("  (the paper's fix — \"slow down the master\" — corresponds to raising\n   client think time until final lag returns to ~0)\n");
}

// ---------------------------------------------------------------------
// E16 — gray-failure campaign: brownouts, flaky links, quarantine,
// adaptive detection, degraded read-only
// ---------------------------------------------------------------------

/// Read-mostly mix with occasional full scans. The scans matter: under a
/// brownout they occupy the backend long enough to cross a fixed silence
/// timeout, which a point read (~40µs) never does.
struct GrayMix {
    total_keys: i64,
    write_fraction: f64,
    scan_fraction: f64,
}

impl replimid_core::TxSource for GrayMix {
    fn next_tx(&mut self, rng: &mut replimid_det::DetRng) -> Vec<String> {
        let d: f64 = rng.gen();
        let k = rng.gen_range(0..self.total_keys);
        if d < self.write_fraction {
            vec![format!("UPDATE bench SET v = v + 1 WHERE k = {k}")]
        } else if d < self.write_fraction + self.scan_fraction {
            vec!["SELECT COUNT(v) FROM bench".to_string()]
        } else {
            vec![format!("SELECT v FROM bench WHERE k = {k}")]
        }
    }
}

fn e16_gray_failure_campaign() {
    banner(
        "E16",
        "gray-failure campaign: brownouts & flaky links vs quarantine/adaptive (§4.1.3, §5.1)",
    );
    let secs: u64 = 30;
    let rows = 4_000usize;
    // One seeded gray schedule, applied verbatim to every config so the
    // four arms face the identical fault sequence. Brownouts stretch
    // service times (backlog builds, op timeouts fire); flaky links drop
    // and delay messages (silence gaps fool the fixed heartbeat timeout).
    let mut rng = replimid_det::DetRng::seed_from_u64(160);
    let spec = GraySpec {
        accel: 1_200_000.0,
        mean_episode_us: dur::secs(2),
        min_episode_us: dur::millis(800),
        brownout_ratio: 0.5,
        brownout_factor: (6.0, 10.0),
        link: LinkFault { drop_prob: 0.25, dup_prob: 0.05, jitter_us: 40_000 },
    };
    let schedule = GrayFaultSchedule::poisson(&mut rng, 3, dur::secs(secs), spec);
    let brownouts = schedule
        .faults
        .iter()
        .filter(|f| matches!(f.kind, GrayKind::Brownout { .. }))
        .count();
    println!(
        "  schedule: {} gray episodes over {secs}s ({brownouts} brownouts, {} flaky links); no node ever crashes\n",
        schedule.len(),
        schedule.len() - brownouts,
    );
    let mut t = Table::new(&[
        "config", "goodput tps", "p99 ms", "false evict", "trips", "rejoins", "availability",
        "nines",
    ]);
    for (label, quarantine, adaptive) in [
        ("baseline", false, false),
        ("quarantine", true, false),
        ("adaptive", false, true),
        ("quarantine+adaptive", true, true),
    ] {
        let mut cfg = mm_statement_cfg(rows);
        // Round-robin read routing so the comparison isolates the
        // health-driven mechanisms (LPRF would partially route around a
        // backlogged replica on its own).
        cfg.mw.policy = Policy::RoundRobin;
        // Aggressive fixed detector: the tuning that finds real crashes
        // fast is exactly the one a browned-out scan or a jitter spike
        // fools (§4.3.4.2).
        cfg.mw.heartbeat = HeartbeatConfig { interval_us: 10_000, timeout_us: 30_000 };
        cfg.mw.op_timeout_us = 1_000_000;
        if quarantine {
            cfg.mw.quarantine = Some(QuarantineConfig::default());
        }
        if adaptive {
            cfg.mw.adaptive_detection = Some(AdaptiveConfig {
                min_timeout_us: 30_000,
                max_timeout_us: 2_000_000,
                factor: 1.5,
                k: 4.0,
                window: 32,
            });
        }
        let mut cluster = Cluster::build(cfg);
        let clients: Vec<NodeId> = (0..12)
            .map(|_| {
                cluster.add_client(
                    GrayMix {
                        total_keys: rows as i64,
                        write_fraction: 0.05,
                        scan_fraction: 0.06,
                    },
                    |cc| {
                        cc.think_time_us = 500;
                        cc.request_timeout_us = 2_000_000;
                    },
                )
            })
            .collect();
        for f in &schedule.faults {
            match f.kind {
                GrayKind::Brownout { factor } => {
                    cluster.brownout_backend_at(f.start, 0, f.node, factor);
                    cluster.clear_brownout_at(f.end, 0, f.node);
                }
                GrayKind::FlakyLink { fault } => {
                    cluster.flaky_link_at(f.start, 0, f.node, fault);
                    cluster.clear_flaky_link_at(f.end, 0, f.node);
                }
            }
        }
        run_and_drain(&mut cluster, secs);
        let agg = aggregate(&mut cluster, &clients);
        let mw = cluster.mw_metrics(0);
        t.row(&[
            label.to_string(),
            format!("{:.0}", tps(agg.committed, secs)),
            format!("{:.1}", agg.p99_tx_us as f64 / 1e3),
            mw.counters.false_evictions.to_string(),
            mw.counters.quarantine_trips.to_string(),
            mw.counters.quarantine_rejoins.to_string(),
            format!("{:.6}", mw.availability.availability()),
            format!("{:.2}", mw.availability.nines()),
        ]);
        let _ = clients;
    }
    t.print();
    println!(
        "  (every backend stays alive throughout: each \"false evict\" is a healthy\n   node lost to the detector; quarantine routes around brownouts, adaptive\n   thresholds stop stretched pongs from reading as death — §4.3.4.2)\n"
    );

    // (b) Degraded read-only mode: write quorum lost, reads keep flowing.
    println!("  write-quorum loss: backends 1+2 crash at t=2s, restart at t=6s (of 9s):\n");
    let mut t = Table::new(&[
        "degrade mode", "read tps during loss", "writes during loss", "write rejects",
        "degraded ms", "outages",
    ]);
    for degrade in [false, true] {
        let mut cfg = mm_statement_cfg(500);
        cfg.mw.degrade_to_read_only = degrade;
        let mut cluster = Cluster::build(cfg);
        let readers: Vec<NodeId> = (0..4)
            .map(|_| {
                cluster.add_client(micro::PointReads { total_keys: 500 }, |cc| {
                    cc.think_time_us = 500;
                })
            })
            .collect();
        let writers: Vec<NodeId> = (0..2i64)
            .map(|w| {
                cluster.add_client(SeqInsert::new(1_000_000 * (w + 1)), |cc| {
                    cc.think_time_us = 1_000;
                    cc.request_timeout_us = 300_000;
                })
            })
            .collect();
        cluster.crash_backend_at(SimTime::from_secs(2), 0, 1);
        cluster.crash_backend_at(SimTime::from_millis(2_050), 0, 2);
        cluster.restart_backend_at(SimTime::from_secs(6), 0, 1);
        cluster.restart_backend_at(SimTime::from_secs(6), 0, 2);
        cluster.run_for(dur::secs(9));
        // Commit counts over seconds 3..=5, fully inside the quorum loss.
        let count_window = |nodes: &[NodeId], cluster: &mut Cluster| -> u64 {
            nodes
                .iter()
                .map(|&n| {
                    cluster
                        .client_metrics(n)
                        .commits_per_sec
                        .iter()
                        .filter(|&(&s, _)| (3..=5).contains(&s))
                        .map(|(_, &c)| c)
                        .sum::<u64>()
                })
                .sum()
        };
        let reads_during = count_window(&readers, &mut cluster);
        let writes_during = count_window(&writers, &mut cluster);
        let mw = cluster.mw_metrics(0);
        t.row(&[
            if degrade { "read-only" } else { "off (unsafe writes)" }.to_string(),
            format!("{:.0}", reads_during as f64 / 3.0),
            writes_during.to_string(),
            mw.counters.degraded_write_rejects.to_string(),
            format!("{:.0}", mw.degraded.total_us() as f64 / 1e3),
            mw.availability.outage_count().to_string(),
        ]);
    }
    t.print();
    println!(
        "  (with the flag off a lone survivor silently accepts quorum-less writes;\n   read-only mode fails them fast with a retryable Degraded error while the\n   survivors keep serving reads — degraded time is tracked, not downtime)\n"
    );
}

// ---------------------------------------------------------------------
// E17 — per-stage latency attribution: where does a transaction's time go?
// ---------------------------------------------------------------------

/// One E17 arm: build, load, optionally inject a mid-run brownout, then
/// return (middleware metrics, merged client trace, merged db trace).
fn e17_arm(
    writeset: bool,
    clients: usize,
    think_us: u64,
    gray: bool,
    secs: u64,
) -> (replimid_core::MwMetrics, TraceSink, TraceSink) {
    let mut cfg = mm_statement_cfg(2_000);
    if writeset {
        cfg.mw.mode = Mode::MultiMasterWriteset;
    }
    // Round-robin so the breakdown is not shaped by latency-aware routing.
    cfg.mw.policy = Policy::RoundRobin;
    let mut cluster = Cluster::build(cfg);
    let handles: Vec<NodeId> = (0..clients)
        .map(|_| {
            cluster.add_client(
                GrayMix { total_keys: 2_000, write_fraction: 0.2, scan_fraction: 0.05 },
                |cc| {
                    cc.think_time_us = think_us;
                    cc.request_timeout_us = 2_000_000;
                },
            )
        })
        .collect();
    if gray {
        cluster.brownout_backend_at(SimTime::from_secs(3), 0, 1, 8.0);
        cluster.clear_brownout_at(SimTime::from_secs(6), 0, 1);
    }
    run_and_drain(&mut cluster, secs);
    let mut client_trace = TraceSink::new();
    for &h in &handles {
        client_trace.merge(&cluster.client_metrics(h).trace);
    }
    let mut db_trace = TraceSink::new();
    for b in 0..3 {
        db_trace.merge(&cluster.db_trace(0, b));
    }
    (cluster.mw_metrics(0), client_trace, db_trace)
}

fn e17_latency_attribution() {
    banner(
        "E17",
        "per-stage latency attribution: trace waterfalls across load and a gray episode",
    );
    let secs = 10u64;
    println!(
        "  20% updates / 5% scans / 75% point reads on 2000 rows, 3 backends, {secs}s;\n  every statement carries a trace id and each middleware stage transition\n  records a span — the stage columns tile the end-to-end latency exactly.\n"
    );
    let arms: [(&str, bool, usize, u64, bool); 5] = [
        ("stmt low", false, 2, 5_000, false),
        ("stmt mid", false, 8, 500, false),
        ("stmt saturated", false, 24, 100, false),
        ("stmt gray x8", false, 8, 500, true),
        ("ws mid", true, 8, 500, false),
    ];
    let mut t = Table::new(&["load", "stage", "count", "mean µs", "p50 µs", "p99 µs", "share %"]);
    let mut ct = Table::new(&["load", "client stage", "count", "mean µs", "p99 µs"]);
    let mut waterfall: Option<String> = None;
    let mut cert_line: Option<String> = None;
    for (label, writeset, clients, think, gray) in arms {
        let (mw, client_trace, db_trace) = e17_arm(writeset, clients, think, gray, secs);
        let total: u64 = Stage::ALL.iter().map(|&s| mw.trace.stage_histogram(s).sum_us()).sum();
        for s in Stage::ALL {
            let h = mw.trace.stage_histogram(s);
            if h.count() == 0 {
                continue;
            }
            t.row(&[
                label.to_string(),
                s.name().to_string(),
                h.count().to_string(),
                format!("{:.0}", h.mean_us()),
                h.quantile_us(0.5).to_string(),
                h.quantile_us(0.99).to_string(),
                format!("{:.1}", 100.0 * h.sum_us() as f64 / total.max(1) as f64),
            ]);
        }
        for s in [Stage::ClientRtt, Stage::Retry, Stage::Backoff, Stage::Rollback] {
            let h = client_trace.stage_histogram(s);
            if h.count() == 0 {
                continue;
            }
            ct.row(&[
                label.to_string(),
                s.name().to_string(),
                h.count().to_string(),
                format!("{:.0}", h.mean_us()),
                h.quantile_us(0.99).to_string(),
            ]);
        }
        let dbh = db_trace.stage_histogram(Stage::DbService);
        ct.row(&[
            label.to_string(),
            "db-service".to_string(),
            dbh.count().to_string(),
            format!("{:.0}", dbh.mean_us()),
            dbh.quantile_us(0.99).to_string(),
        ]);
        if gray {
            if let Some(slow) = mw.trace.slowest().first() {
                waterfall = mw.trace.waterfall(slow.trace);
            }
        }
        if writeset {
            let c = mw.certifier;
            cert_line = Some(format!(
                "  certifier ({label}): {} checks, {} commits, {} aborts, {} keys, max window {}\n",
                c.checks, c.commits, c.aborts, c.keys_checked, c.max_window
            ));
        }
    }
    t.print();
    println!("  client-side and backend-side attribution for the same runs:\n");
    ct.print();
    if let Some(line) = cert_line {
        println!("{line}");
    }
    if let Some(w) = waterfall {
        println!("  slowest middleware trace of the gray arm (the brownout made Execute\n  absorb nearly the whole window):\n");
        for l in w.lines() {
            println!("    {l}");
        }
        println!();
    }
    println!(
        "  (Admission and BalancerPick are zero-width markers — the middleware\n   admits and routes in the same virtual instant. Order and Certify read as\n   ~0 µs too: with a single middleware the publish self-delivers instantly;\n   multi-middleware runs (E14) pay real ordering latency there. Execute is\n   backend work + queueing; Fanout is certification -> last replica ack.\n   Stage::Other stays absent: every recorded microsecond is attributed.)\n"
    );

    // -- appended: plan-cache attribution on the parse-heavy insert mix --
    println!(
        "  plan cache on the parse-heavy mix — single-row inserts over 8\n  disjoint tables (8 templates, literals changing every statement), 32\n  clients, group commit 32/200µs, 5s. With the cache on, the middleware\n  parses each template once, binds literals, and ships the parsed\n  statement; backends skip their parser. Under group commit one network\n  delivery carries a whole batch, so the Execute span (delivery ->\n  slowest backend ack) is dominated by backend CPU — exactly where the\n  per-statement parse cost lived:\n"
    );
    let mut t = Table::new(&[
        "cache",
        "stage",
        "count",
        "mean µs",
        "sum ms",
        "hits",
        "misses",
        "hit %",
    ]);
    let mut combined = [0u64; 2];
    for (i, cache) in [0usize, 256].into_iter().enumerate() {
        let mw = e17_plan_arm(cache, 5);
        let lookups = mw.counters.plan_cache_hits + mw.counters.plan_cache_misses;
        for s in [Stage::Admission, Stage::Execute] {
            let h = mw.trace.stage_histogram(s);
            combined[i] += h.sum_us();
            t.row(&[
                if cache == 0 { "off".into() } else { cache.to_string() },
                s.name().to_string(),
                h.count().to_string(),
                format!("{:.0}", h.mean_us()),
                format!("{:.1}", h.sum_us() as f64 / 1_000.0),
                mw.counters.plan_cache_hits.to_string(),
                mw.counters.plan_cache_misses.to_string(),
                if lookups == 0 {
                    "-".into()
                } else {
                    format!("{:.1}", 100.0 * mw.counters.plan_cache_hits as f64 / lookups as f64)
                },
            ]);
        }
    }
    t.print();
    println!(
        "  combined Admission+Execute stage time: {:.1} ms (off) -> {:.1} ms (on),\n  a {:.1}% cut — the backend parse eliminated on every fan-out execution.\n",
        combined[0] as f64 / 1_000.0,
        combined[1] as f64 / 1_000.0,
        100.0 * (combined[0].saturating_sub(combined[1])) as f64 / combined[0].max(1) as f64,
    );
}

/// One plan-cache attribution arm for the E17 appendix: the E18 insert
/// workload (8 templates, fresh literals each statement) with the plan
/// cache set as given; `plan_cache = 0` is the exact pre-cache byte path.
fn e17_plan_arm(plan_cache: usize, secs: u64) -> replimid_core::MwMetrics {
    // The E18 best batching arm: with ~32-statement batches one delivery
    // amortizes the network hop over the whole batch, so the Execute span
    // is mostly backend CPU and the parse share is visible. Unbatched, the
    // ~200µs RTT swamps the 18µs per-statement parse.
    let mut cfg = group_commit_cfg(32, 200);
    cfg.mw.plan_cache = plan_cache;
    let mut cluster = Cluster::build(cfg);
    for i in 0..32 {
        cluster.add_client(ShardedInsert::new(10_000_000 * (i as i64 + 1)), |cc| {
            cc.think_time_us = 100;
            cc.request_timeout_us = 2_000_000;
        });
    }
    run_and_drain(&mut cluster, secs);
    cluster.mw_metrics(0)
}

// ---------------------------------------------------------------------
// E18 — group-commit batching on the totally-ordered write path
// ---------------------------------------------------------------------

/// One E18 arm: pure-insert load spread over 8 disjoint tables (so the
/// backend-side grouped apply has parallelism to exploit), with the
/// middleware's group-commit batch knobs set as given. `batch_max = 1`
/// disables batching and takes the exact pre-batching code path.
fn e18_arm(
    clients: usize,
    think_us: u64,
    batch_max: usize,
    deadline_us: u64,
    secs: u64,
) -> replimid_core::MwMetrics {
    let mut cluster = Cluster::build(group_commit_cfg(batch_max, deadline_us));
    for i in 0..clients {
        cluster.add_client(ShardedInsert::new(10_000_000 * (i as i64 + 1)), |cc| {
            cc.think_time_us = think_us;
            cc.request_timeout_us = 2_000_000;
        });
    }
    run_and_drain(&mut cluster, secs);
    cluster.mw_metrics(0)
}

fn e18_group_commit() {
    banner("E18", "group-commit batching: batch size x flush deadline x load");
    let secs = 5u64;
    println!(
        "  Pure single-insert transactions over 8 disjoint tables, 3 replicas,\n  {secs}s per cell. The middleware accumulates admitted writes into one\n  totally-ordered batch (flushed at batch_max or at the deadline) and the\n  backends apply each batch with the parallel-replay grouping, so disjoint\n  statements in one batch are charged max-of-chains instead of sum.\n"
    );
    let loads: [(&str, usize, u64); 3] =
        [("low", 2, 5_000), ("mid", 8, 500), ("saturated", 32, 100)];
    // batch_max = 1 is the control: batching compiled in but disabled.
    let arms: [(usize, u64); 5] = [(1, 0), (8, 200), (8, 1_000), (32, 200), (32, 1_000)];
    let mut t = Table::new(&[
        "load",
        "batch",
        "ddl µs",
        "write tps",
        "vs off",
        "p50 w µs",
        "p99 w µs",
        "mean batch",
        "flush sz/ddl",
    ]);
    let mut low_off_p50 = 0u64;
    let mut low_worst_p50 = 0u64;
    let mut sat_off_tps = 0.0f64;
    let mut sat_best: Option<(f64, usize, u64)> = None;
    for (label, clients, think_us) in loads {
        let mut off_tps = 0.0f64;
        for (batch_max, deadline_us) in arms {
            let mw = e18_arm(clients, think_us, batch_max, deadline_us, secs);
            let wtps = tps(mw.counters.writes, secs);
            if batch_max == 1 {
                off_tps = wtps;
            }
            let p50 = mw.write_latency.quantile_us(0.5);
            match (label, batch_max) {
                ("low", 1) => low_off_p50 = p50,
                ("low", _) => low_worst_p50 = low_worst_p50.max(p50),
                ("saturated", 1) => sat_off_tps = wtps,
                ("saturated", _) if sat_best.is_none_or(|(best, _, _)| wtps > best) => {
                    sat_best = Some((wtps, batch_max, deadline_us));
                }
                _ => {}
            }
            let flushes = mw.counters.batch_flush_size + mw.counters.batch_flush_deadline;
            t.row(&[
                label.to_string(),
                if batch_max == 1 { "off".to_string() } else { batch_max.to_string() },
                if batch_max == 1 { "-".to_string() } else { deadline_us.to_string() },
                format!("{wtps:.0}"),
                format!("{:.2}x", wtps / off_tps.max(1e-9)),
                p50.to_string(),
                mw.write_latency.quantile_us(0.99).to_string(),
                if flushes == 0 {
                    "-".to_string()
                } else {
                    format!("{:.1}", mw.batch_sizes.sum_us() as f64 / flushes as f64)
                },
                if flushes == 0 {
                    "-".to_string()
                } else {
                    format!("{}/{}", mw.counters.batch_flush_size, mw.counters.batch_flush_deadline)
                },
            ]);
        }
    }
    t.print();
    if let Some((best_tps, batch, ddl)) = sat_best {
        println!(
            "\n  at saturation, batch={batch} / deadline={ddl} µs sustains {:.2}x the\n  unbatched write throughput; the price is paid at low load, where the\n  write p50 grows from {low_off_p50} µs (off) to {low_worst_p50} µs (worst batched arm) —\n  the classic group-commit trade the deadline knob bounds.\n",
            best_tps / sat_off_tps.max(1e-9)
        );
    }
}

// ---------------------------------------------------------------------
// E19 — freshness-constrained read routing at fleet scale (§5.1 agenda;
// the read-one/write-all session-consistency gap of §3.1)
// ---------------------------------------------------------------------

/// One freshness arm: master-slave 1-safe with lazy log shipping, a
/// session fleet mixing point reads and writes on slot-private keys, and
/// the quarantine breaker armed. Optionally injects the PR 2 gray episode
/// (slave 1 browns out 1s..3s). Returns (fleet metrics, mw metrics).
#[allow(clippy::too_many_arguments)]
fn e19_arm(
    sessions: usize,
    backends: usize,
    policy: ReadPolicy,
    ship_ms: u64,
    write_permille: u32,
    think_us: u64,
    secs: u64,
    gray: bool,
    saturate: bool,
) -> (FleetMetrics, MwMetrics) {
    // Point queries cost a scan of their table (no index fast path in the
    // engine), so the fleet's keyspace is sharded over fixed-size tables:
    // per-read cost stays constant however large the fleet, and
    // session-table scale is measured instead of scan cost. The saturated
    // scale sweep uses 100-key shards (~140us/read) so its 10^5-request
    // bursts stay cheap to execute; the sub-saturation arms keep one
    // 120-key table.
    let kpt = if saturate { 100 } else { 1_000 };
    let mut cfg = ClusterConfig::new(
        Mode::MasterSlave {
            two_safe: false,
            ship_interval_us: ship_ms * 1_000,
            use_writesets: false,
            parallel_apply: false,
            read_master: false,
        },
        micro::sharded_schema("bench", sessions, kpt),
        "bench",
    );
    cfg.backends_per_mw = backends;
    // Round-robin keeps every slave in rotation so the freshness filter
    // (not balancer skew) decides who serves; it also lets a browned
    // slave's health score accumulate evidence (E16 reasoning).
    cfg.mw.policy = Policy::RoundRobin;
    cfg.mw.read_policy = policy;
    cfg.mw.quarantine = Some(QuarantineConfig::default());
    if saturate {
        // The scale sweep oversubscribes the cluster on purpose, so db
        // queues grow far past the LAN detector's 100ms: pongs queue
        // behind reads and the detector would evict *live* backends —
        // and evicting the master means a 1-safe promotion that loses
        // acked tail writes (real RYW violations, but E3's story, not
        // this one). Detection under load is E11/E16's subject; here the
        // paper's tcp-default anti-pattern timeout keeps the cells about
        // read capacity. `op_timeout_us` must cover the heartbeat
        // timeout (middleware invariant).
        cfg.mw.heartbeat = HeartbeatConfig::tcp_default();
        cfg.mw.op_timeout_us = 75_000_000;
    }
    let mut cluster = Cluster::build(cfg);
    let fleet = cluster.add_session_fleet(0, sessions, |fc| {
        fc.think_time_us = think_us;
        fc.write_permille = write_permille;
        fc.keys_per_table = kpt;
        fc.ramp_us = 1_000_000;
        // Large fleets oversubscribe the backends on purpose (closed-loop
        // queueing is the point); don't let the guard misread queueing as
        // loss.
        fc.request_timeout_us = 30_000_000;
    });
    if gray {
        cluster.brownout_backend_at(SimTime::from_millis(1_000), 0, 1, 10.0);
        cluster.clear_brownout_at(SimTime::from_millis(3_000), 0, 1);
    }
    cluster.run_for(dur::secs(secs));
    (cluster.fleet_metrics(fleet), cluster.mw_metrics(0))
}

fn e19_freshness_routing() {
    banner("E19", "freshness-vector read routing: read-your-writes at fleet scale");
    let secs = 5u64;

    // -- (a) policy arms: does the read path honour the session's writes? --
    println!(
        "  (a) read-policy arms — 120 sessions, 45ms think, 4 backends (1\n  master + 3 slaves), 50ms shipping, 20% writes, {secs}s: a session's\n  next read lands inside the shipping lag of its own commit. `any`\n  reads any healthy slave (stale windows up to the ship interval);\n  `sticky` pins the session where it last wrote; `fresh` admits every\n  slave whose applied position covers the session's last commit,\n  parking (then falling back to the master) when none does.\n"
    );
    let mut t = Table::new(&[
        "policy",
        "read tps",
        "ryw viol",
        "stale cut",
        "waits",
        "timeouts",
        "to master",
        "p50 r µs",
        "p99 r µs",
    ]);
    for (label, policy) in [
        ("any", ReadPolicy::Any),
        ("sticky", ReadPolicy::SessionSticky),
        ("fresh", ReadPolicy::Fresh),
    ] {
        let (f, m) = e19_arm(120, 4, policy, 50, 200, 45_000, secs, false, false);
        t.row(&[
            label.to_string(),
            format!("{:.0}", tps(f.reads, secs)),
            f.ryw_violations.to_string(),
            m.counters.fresh_filtered_stale.to_string(),
            m.counters.freshness_waits.to_string(),
            m.counters.freshness_wait_timeouts.to_string(),
            m.counters.fresh_fallback_primary.to_string(),
            f.read_latency.quantile_us(0.5).to_string(),
            f.read_latency.quantile_us(0.99).to_string(),
        ]);
    }
    t.print();

    // -- (b) write-ratio sweep: freshness pressure vs the wait path --
    println!(
        "\n  (b) read/write mix under `fresh` — same cluster; the write ratio\n  controls how often a session's own commit outruns the slaves and the\n  read must wait or divert.\n"
    );
    let mut t = Table::new(&[
        "writes",
        "read tps",
        "ryw viol",
        "stale cut",
        "waits",
        "to master",
        "p99 r µs",
    ]);
    for write_permille in [20u32, 200, 500] {
        let (f, m) =
            e19_arm(120, 4, ReadPolicy::Fresh, 50, write_permille, 45_000, secs, false, false);
        t.row(&[
            format!("{}%", write_permille / 10),
            format!("{:.0}", tps(f.reads, secs)),
            f.ryw_violations.to_string(),
            m.counters.fresh_filtered_stale.to_string(),
            m.counters.freshness_waits.to_string(),
            m.counters.fresh_fallback_primary.to_string(),
            f.read_latency.quantile_us(0.99).to_string(),
        ]);
    }
    t.print();

    // -- (c) sessions x backends: does read capacity still scale-out? --
    println!(
        "\n  (c) fleet size x backend count under `fresh` — 10ms shipping, 10%\n  writes, ~140µs/read (100-key shards), think time grown with the fleet\n  so every cell offers the same ~33k req/s demand: past what 1, 3, or\n  7 slaves can serve, so added slaves turn into throughput. The failure detector is set to\n  the paper's tcp-default anti-pattern so deliberate queueing is\n  measured as latency instead of evicting live nodes (detection under\n  load is E11/E16's subject), and closed-loop p50/p99 absorb the\n  oversubscription in the capacity-limited cells. The session table is\n  the middleware structure under test at 10^5 entries; scale-out is\n  sublinear in slaves because every slave also pays the apply cost of\n  every write (the lazy-replication tax from E1).\n"
    );
    let mut t = Table::new(&[
        "sessions",
        "backends",
        "read tps",
        "vs 2",
        "ryw viol",
        "p50 r µs",
        "p99 r µs",
    ]);
    // The 10^6-session row multiplies the run cost by ~10x, so it is
    // opt-in: REPLIMID_HEAVY=1 adds it (and nothing else changes — the
    // default output stays byte-identical for the determinism gate).
    let mut fleet_sizes = vec![1_000usize, 10_000, 100_000];
    if std::env::var("REPLIMID_HEAVY").as_deref() == Ok("1") {
        fleet_sizes.push(1_000_000);
    }
    for sessions in fleet_sizes {
        let think_us = sessions as u64 * 30;
        let mut base_tps = 0.0f64;
        for backends in [2usize, 4, 8] {
            let (f, _m) = e19_arm(
                sessions,
                backends,
                ReadPolicy::Fresh,
                10,
                100,
                think_us,
                secs,
                false,
                true,
            );
            let rtps = tps(f.reads, secs);
            if backends == 2 {
                base_tps = rtps;
            }
            assert_eq!(f.ryw_violations, 0, "RYW broke at {sessions} x {backends}");
            t.row(&[
                sessions.to_string(),
                backends.to_string(),
                format!("{rtps:.0}"),
                format!("{:.2}x", rtps / base_tps.max(1e-9)),
                f.ryw_violations.to_string(),
                f.read_latency.quantile_us(0.5).to_string(),
                f.read_latency.quantile_us(0.99).to_string(),
            ]);
        }
    }
    t.print();

    // -- (d) the PR 2 gray episode: RYW through quarantine and rejoin --
    let (f, m) = e19_arm(120, 4, ReadPolicy::Fresh, 50, 200, 45_000, secs, true, false);
    let trips = m
        .quarantine_events
        .iter()
        .filter(|&&(_, b, e)| b == 1 && matches!(e, HealthEvent::Trip { .. }))
        .count();
    let rejoins = m
        .quarantine_events
        .iter()
        .filter(|&&(_, b, e)| b == 1 && e == HealthEvent::Rejoin)
        .count();
    println!(
        "\n  (d) gray episode: slave 1 browns out (10x service) 1s..3s mid-run.\n  read tps {:.0}, ryw violations {} (must be 0), quarantine trips {},\n  rejoins {}, reads routed to a quarantined slave {} — the freshness\n  filter composes with the breaker instead of fighting it.\n",
        tps(f.reads, secs),
        f.ryw_violations,
        trips,
        rejoins,
        m.counters.reads_routed_to_quarantined,
    );

    // -- (e) bounded staleness: the dial between `fresh` and `any` --
    println!(
        "\n  (e) bounded staleness — same cluster as (a), 20% writes: `k` is how\n  many log positions a replica may lag behind the session's own last\n  commit and still serve its reads. k=0 is exactly `fresh` (RYW holds\n  by construction); growing k releases reads earlier and trades a\n  bounded, *counted* staleness window for fewer parked reads — the\n  continuous consistency dial the §3.3 taxonomy samples only at its\n  endpoints. Here `ryw viol` is the measured price of the slack, not a\n  bug: it counts reads served inside the k-window.\n"
    );
    let mut t = Table::new(&[
        "policy",
        "read tps",
        "ryw viol",
        "stale cut",
        "waits",
        "to master",
        "p50 r µs",
        "p99 r µs",
    ]);
    for (label, policy) in [
        ("k=0 (fresh)", ReadPolicy::BoundedStaleness(0)),
        ("k=2", ReadPolicy::BoundedStaleness(2)),
        ("k=8", ReadPolicy::BoundedStaleness(8)),
        ("k=64", ReadPolicy::BoundedStaleness(64)),
        ("any", ReadPolicy::Any),
    ] {
        let (f, m) = e19_arm(120, 4, policy, 50, 200, 45_000, secs, false, false);
        if policy == ReadPolicy::BoundedStaleness(0) {
            assert_eq!(f.ryw_violations, 0, "k=0 must behave exactly like `fresh`");
        }
        t.row(&[
            label.to_string(),
            format!("{:.0}", tps(f.reads, secs)),
            f.ryw_violations.to_string(),
            m.counters.fresh_filtered_stale.to_string(),
            m.counters.freshness_waits.to_string(),
            m.counters.fresh_fallback_primary.to_string(),
            f.read_latency.quantile_us(0.5).to_string(),
            f.read_latency.quantile_us(0.99).to_string(),
        ]);
    }
    t.print();

    // -- (f) appended: monotonic reads for sessions that don't write --
    println!(
        "\n  (f) monotonic reads — same fleet, but the master joins the read\n  rotation, shipping slowed to 200 ms (several reads fit inside one\n  lag window), and every second session is a pure *observer*: it\n  never writes and watches a neighbor's key. RYW freshness is vacuous\n  for an observer (no own commit to anchor the stamp), so under `any`\n  AND under `fresh` its view can go backwards — read the fresh\n  master, then a lagged slave. `monotonic` folds the highest position\n  a session has read into its stamp; a session that has read the\n  master pins there (the middleware cannot bound what a master read\n  saw).\n"
    );
    let mut t = Table::new(&[
        "policy",
        "read tps",
        "monotonic viol",
        "ryw viol",
        "stale cut",
        "waits",
        "p50 r µs",
        "p99 r µs",
    ]);
    for (label, policy) in [
        ("any", ReadPolicy::Any),
        ("fresh", ReadPolicy::Fresh),
        ("monotonic", ReadPolicy::MonotonicReads),
    ] {
        let (f, m) = e19_monotonic_arm(120, 4, policy, 200, secs);
        if policy == ReadPolicy::MonotonicReads {
            assert_eq!(f.monotonic_violations, 0, "monotonic arm went backwards");
            assert_eq!(f.ryw_violations, 0, "monotonic arm broke RYW");
        }
        t.row(&[
            label.to_string(),
            format!("{:.0}", tps(f.reads, secs)),
            f.monotonic_violations.to_string(),
            f.ryw_violations.to_string(),
            m.counters.fresh_filtered_stale.to_string(),
            m.counters.freshness_waits.to_string(),
            f.read_latency.quantile_us(0.5).to_string(),
            f.read_latency.quantile_us(0.99).to_string(),
        ]);
    }
    t.print();
}

/// One monotonic-reads arm for E19(f): like [`e19_arm`] but with the
/// master in the read rotation (`read_master: true`, where going backwards
/// actually happens — lockstep shipping keeps the slaves within jitter of
/// each other) and half the fleet as write-free observer sessions. No
/// fault injection: the anomaly is pure routing.
fn e19_monotonic_arm(
    sessions: usize,
    backends: usize,
    policy: ReadPolicy,
    ship_ms: u64,
    secs: u64,
) -> (FleetMetrics, MwMetrics) {
    let mut cfg = ClusterConfig::new(
        Mode::MasterSlave {
            two_safe: false,
            ship_interval_us: ship_ms * 1_000,
            use_writesets: false,
            parallel_apply: false,
            read_master: true,
        },
        micro::schema("bench", sessions),
        "bench",
    );
    cfg.mw.policy = Policy::RoundRobin;
    cfg.mw.read_policy = policy;
    cfg.backends_per_mw = backends;
    let mut cluster = Cluster::build(cfg);
    let fleet = cluster.add_session_fleet(0, sessions, |fc| {
        fc.think_time_us = 45_000;
        fc.write_permille = 200;
        fc.ramp_us = 1_000_000;
        fc.observer_every = 2;
    });
    cluster.run_for(dur::secs(secs));
    (cluster.fleet_metrics(fleet), cluster.mw_metrics(0))
}

// ---------------------------------------------------------------------
// E20 — durable WAL + checkpoint recovery: measured MTTR
// ---------------------------------------------------------------------

/// Sequential inserts spread over 4 disjoint tables (same shape as E9's
/// workload, distinct id blocks per client).
struct E20Source {
    next: i64,
}

impl replimid_core::TxSource for E20Source {
    fn next_tx(&mut self, _r: &mut replimid_det::DetRng) -> Vec<String> {
        let k = self.next;
        self.next += 1;
        vec![format!("INSERT INTO t{} VALUES ({k}, 1)", k % 4)]
    }
}

/// One crash/recovery episode against a durable 3-backend statement-mode
/// cluster. Returns the filled table row plus the recovered backend's
/// wal/recovery numbers for the summary asserts.
#[allow(clippy::too_many_arguments)]
fn e20_episode(
    checkpoint_every: u64,
    kind: CrashKind,
    truncate_log: bool,
) -> Vec<String> {
    let mut schema = vec!["CREATE DATABASE bench".to_string(), "USE bench".to_string()];
    for i in 0..4 {
        schema.push(format!("CREATE TABLE t{i} (k INT PRIMARY KEY, v INT)"));
    }
    let mut cfg = ClusterConfig::new(
        Mode::MultiMasterStatement { nondet: NondetPolicy::RewriteAndReject },
        schema,
        "bench",
    );
    cfg.mw.recovery_batch = 256;
    // Real durability under every backend: WAL mirrored from the binlog,
    // fsync every 8 records (so lossy crash kinds have an unsynced tail to
    // destroy), checkpoints every `checkpoint_every` commits (0 = never:
    // recovery replays the whole log from the schema image).
    cfg.engine.durability = Some(DurabilityConfig { checkpoint_every, fsync_every: 8, ..Default::default() });
    let mut cluster = Cluster::build(cfg);
    for i in 0..4 {
        cluster.add_client(E20Source { next: 10_000_000 * (i + 1) }, |cc| {
            cc.think_time_us = 400;
            // Finite load: clients stop after 2000 transactions (~7 virtual
            // seconds), so the tail of the run drains to quiescence and the
            // end-of-run checksum comparison sees settled state rather than
            // in-flight statements.
            cc.tx_limit = 2_000;
        });
    }
    // 2s of load, then the injected crash; 500ms outage; the rest of the
    // run covers local replay + middleware rejoin.
    cluster.run_for(dur::secs(2));
    // Closed-loop pacing synchronizes the cluster with the checkpoint
    // cadence: a fixed crash instant tends to land in the post-checkpoint
    // lull where the WAL is empty and a lossy crash has nothing to
    // destroy. Step forward (deterministically) until the WAL carries an
    // unsynced tail so `lost-tail`/`torn-tail` hit the window they are
    // meant to test; `clean` uses the same instant for comparability.
    let mut pre_wal = cluster.backend_wal_stats(0, 2).expect("durability on");
    for _ in 0..400 {
        if pre_wal.wal_records >= 4 && pre_wal.wal_bytes > pre_wal.wal_synced_bytes {
            break;
        }
        cluster.run_for(500);
        pre_wal = cluster.backend_wal_stats(0, 2).expect("durability on");
    }
    let tail_exposed = pre_wal.wal_bytes > pre_wal.wal_synced_bytes;
    let pre_pos = cluster.backend_ordered_applied(0, 2);
    cluster.crash_backend_with(cluster.now() + 1, 0, 2, kind);
    cluster.run_for(dur::millis(250));
    if truncate_log {
        // Operator-forced log truncation mid-outage: the rejoiner's
        // checkpoint falls below the boundary and log recovery must
        // escalate to a full resync (the PR 5 truncated-rejoin path, now
        // exercised against a node that ALSO lost local WAL tail).
        cluster.with_middleware(0, |m| {
            let head = m.log.head();
            m.log.force_truncate(head);
        });
    }
    cluster.run_for(dur::millis(250));
    cluster.restart_backend_at(cluster.now() + 1, 0, 2);
    cluster.run_for(dur::secs(10));

    let rec = cluster.backend_recovery(0, 2).expect("backend 2 restarted durably");
    let lost_local = pre_pos.saturating_sub(rec.report.ordered_applied);
    let mw = cluster.mw_metrics(0);
    let rejoin_ms = mw
        .recoveries
        .iter()
        .find(|&&(b, _, _)| b == 2)
        .map(|&(_, s, e)| format!("{:.0}", (e - s) as f64 / 1e3))
        .unwrap_or_else(|| "STUCK".into());
    // The hard promise of the whole subsystem: whatever the crash destroyed
    // locally, the recovered replica converges back to the cluster state —
    // zero committed transactions lost.
    // A lossy crash aimed at an exposed (unsynced) tail must actually lose
    // something locally — otherwise the episode silently tested nothing.
    if tail_exposed && kind != CrashKind::Clean {
        assert!(
            lost_local > 0,
            "E20: {} crash over an unsynced WAL tail lost no local state \
             (ckpt_every={checkpoint_every})",
            kind.name()
        );
    }
    let sums = cluster.backend_checksums();
    assert!(
        sums[0].windows(2).all(|w| w[0] == w[1]),
        "E20: backends diverged after {} crash (ckpt_every={checkpoint_every}): {:?}",
        kind.name(),
        sums[0]
    );
    vec![
        if checkpoint_every == 0 { "never".into() } else { checkpoint_every.to_string() },
        kind.name().to_string(),
        pre_wal.wal_records.to_string(),
        if rec.report.checkpoint_loaded { rec.report.checkpoint_rows.to_string() } else { "-".into() },
        rec.report.entries_replayed.to_string(),
        if rec.report.torn_truncated { "yes".into() } else { "no".into() },
        lost_local.to_string(),
        format!("{:.1}", rec.local_us as f64 / 1e3),
        rejoin_ms,
    ]
}

fn e20_durability() {
    banner(
        "E20",
        "durable WAL + checkpoint recovery: measured MTTR (crash kind x checkpoint interval)",
    );
    println!(
        "  Every backend runs on a simulated block device: committed work is\n  mirrored into a checksummed WAL (fsync every 8 records), checkpoints\n  snapshot the engine and truncate the log. A crash destroys what real\n  crashes destroy — `clean` loses nothing, `lost-tail` drops everything\n  past the last fsync, `torn-tail` additionally leaves a half-written\n  record that recovery truncates at the first bad checksum. MTTR is\n  *measured*, not modeled: `local ms` is the restart's checkpoint load +\n  WAL replay + device IO in virtual time (Stage::Replay); `rejoin ms` is\n  the middleware resyncing the remainder through the recovery log, which\n  restarts from the NODE's reported position — after a lossy crash the\n  node is behind the middleware's own checkpoint (§4.4.2: only the\n  database knows what committed). `lost@node` counts ordered statements\n  the crash destroyed locally; every row must still converge to the\n  cluster checksum (zero committed loss), they are just re-fetched.\n"
    );
    let mut t = Table::new(&[
        "ckpt every",
        "crash",
        "wal recs",
        "ckpt rows",
        "replayed",
        "torn cut",
        "lost@node",
        "local ms",
        "rejoin ms",
    ]);
    for checkpoint_every in [16u64, 256, 0] {
        for kind in [CrashKind::Clean, CrashKind::LostTail, CrashKind::TornTail] {
            t.row(&e20_episode(checkpoint_every, kind, false));
        }
    }
    t.print();

    // The escalation path: log truncated past the rejoiner's checkpoint
    // while it was down AND the node lost its own WAL tail — log replay is
    // impossible, the middleware must ship a full dump, and the node
    // checkpoints the restored image so a later crash cannot resurrect
    // pre-resync state.
    println!(
        "\n  truncated-rejoin escalation: the recovery log is force-truncated\n  mid-outage, so the torn-tail rejoiner cannot log-replay and takes the\n  dump-and-restore path instead (checkpointed on arrival):\n"
    );
    let mut t = Table::new(&[
        "ckpt every",
        "crash",
        "wal recs",
        "ckpt rows",
        "replayed",
        "torn cut",
        "lost@node",
        "local ms",
        "rejoin ms",
    ]);
    t.row(&e20_episode(64, CrashKind::TornTail, true));
    t.print();
    println!();
}

// ---------------------------------------------------------------------
// E21 — plan-cache campaign: cache capacity x statement-template count
// ---------------------------------------------------------------------

/// Fresh-key single-row inserts cycled round-robin over `templates`
/// disjoint tables: every statement is a new literal, so text-keyed
/// caching would never hit — only the normalized (literals-to-params)
/// key gives the cache a chance, and the round-robin cycle is LRU's
/// worst case the moment the template count exceeds the capacity.
struct TemplateCycle {
    next: i64,
    templates: usize,
}

impl replimid_core::TxSource for TemplateCycle {
    fn next_tx(&mut self, _rng: &mut replimid_det::DetRng) -> Vec<String> {
        let k = self.next;
        self.next += 1;
        vec![format!("INSERT INTO t{} VALUES ({k}, 1)", k as usize % self.templates)]
    }
}

/// One E21 cell: statement-mode multi-master over `templates` disjoint
/// tables, 8 closed-loop clients, plan cache of the given capacity
/// (0 = off, the exact pre-cache byte path).
fn e21_arm(plan_cache: usize, templates: usize, secs: u64) -> replimid_core::MwMetrics {
    let mut schema = vec!["CREATE DATABASE bench".to_string(), "USE bench".to_string()];
    for i in 0..templates {
        schema.push(format!("CREATE TABLE t{i} (k INT PRIMARY KEY, v INT)"));
    }
    let mut cfg = ClusterConfig::new(
        Mode::MultiMasterStatement { nondet: NondetPolicy::RewriteAndReject },
        schema,
        "bench",
    );
    cfg.mw.policy = Policy::RoundRobin;
    cfg.mw.plan_cache = plan_cache;
    let mut cluster = Cluster::build(cfg);
    for i in 0..8 {
        // Phase-offset the cycles (client i starts T*i/8 templates in), so
        // the global access pattern interleaves 8 spread positions instead
        // of 8 lockstep ones — the realistic shape, and the one where
        // capacity genuinely decides the hit rate.
        let phase = (templates as i64 * i as i64) / 8;
        cluster.add_client(
            TemplateCycle { next: 10_000_000 * (i as i64 + 1) + phase, templates },
            |cc| {
                cc.think_time_us = 100;
                cc.request_timeout_us = 2_000_000;
            },
        );
    }
    run_and_drain(&mut cluster, secs);
    cluster.mw_metrics(0)
}

fn e21_plan_cache() {
    banner("E21", "plan cache: capacity x distinct templates (hit rate vs speedup)");
    let secs = 5u64;
    println!(
        "  Single-row inserts cycling over T disjoint tables (T distinct\n  statement templates, fresh literals every statement), 8 clients, 3\n  replicas, {secs}s per cell. The middleware normalizes each statement\n  (literals -> params), consults a bounded-LRU plan cache, and — with\n  the cache on — ships the parsed template + params so backends skip\n  their parser. Cycling access is LRU's worst case: the moment T\n  exceeds the capacity the hit rate collapses to zero and every\n  statement pays a miss plus an eviction, which is why capacity sits\n  on the row axis of a real deployment's sizing decision.\n"
    );
    let mut t = Table::new(&[
        "cache",
        "templates",
        "hit %",
        "evictions",
        "write tps",
        "vs off",
        "p50 w µs",
        "p99 w µs",
    ]);
    for templates in [4usize, 32, 128] {
        let mut off_tps = 0.0f64;
        for cache in [0usize, 8, 64, 256] {
            let mw = e21_arm(cache, templates, secs);
            let wtps = tps(mw.counters.writes, secs);
            if cache == 0 {
                off_tps = wtps;
            }
            let lookups = mw.counters.plan_cache_hits + mw.counters.plan_cache_misses;
            t.row(&[
                if cache == 0 { "off".into() } else { cache.to_string() },
                templates.to_string(),
                if lookups == 0 {
                    "-".into()
                } else {
                    format!(
                        "{:.1}",
                        100.0 * mw.counters.plan_cache_hits as f64 / lookups as f64
                    )
                },
                mw.counters.plan_cache_evictions.to_string(),
                format!("{wtps:.0}"),
                format!("{:.2}x", wtps / off_tps.max(1e-9)),
                mw.write_latency.quantile_us(0.5).to_string(),
                mw.write_latency.quantile_us(0.99).to_string(),
            ]);
        }
    }
    t.print();
    println!(
        "  (A miss still ships the parsed form — the parse happens once at the\n   middleware instead of once per replica — so even the thrashing cells\n   beat `off`, and the virtual-time columns are flat in hit rate:\n   middleware-side parse CPU is outside the simulator's cost model\n   (admission is a zero-width stage). What a hit buys over a miss is\n   wall-clock middleware CPU, and bench_pr8 measures it honestly: for\n   statements this small a hit (normalize+bind) costs about half a miss\n   but about the SAME as one plain parse (binding clones the template),\n   so admission CPU is roughly unchanged and the pipeline's real win is\n   the three downstream parses it removes on hit and miss alike. The\n   off arm is the pre-cache code path byte-for-byte: plan_cache = 0\n   changes no message, cost, or decision in E1-E20.)\n"
    );
}

// ---------------------------------------------------------------------
// E22 — partial replication: write scaling on disjoint groups + the
// cross-group commit tax
// ---------------------------------------------------------------------

/// One E22 cell: writeset-mode cluster with `per_group` closed-loop
/// insert clients per table group (client i homed on group i % groups),
/// an optional placement, an optional fraction of paired cross-group
/// transactions, and a backend CPU cost multiplier (the scaling arm
/// slows the backends so replicated apply work — not client count — is
/// what limits write throughput).
fn e22_arm(
    groups: usize,
    backends: usize,
    placement: Option<Placement>,
    per_group: usize,
    multi_fraction: f64,
    speed_factor: f64,
    secs: u64,
) -> (replimid_bench::Agg, MwMetrics) {
    let cfg = {
        let mut cfg = partial_ws_cfg(groups, backends, placement);
        cfg.mw.policy = Policy::RoundRobin;
        cfg.backend_speed = vec![speed_factor];
        cfg
    };
    let mut cluster = Cluster::build(cfg);
    let clients: Vec<NodeId> = (0..per_group * groups)
        .map(|i| {
            let src = micro::DisjointInsert::new(1_000_000 * (i as i64 + 1), i % groups)
                .with_multi(multi_fraction);
            cluster.add_client(src, |cc| {
                cc.think_time_us = 200;
                cc.request_timeout_us = 2_000_000;
            })
        })
        .collect();
    run_and_drain(&mut cluster, secs);
    (aggregate(&mut cluster, &clients), cluster.mw_metrics(0))
}

fn e22_partial_replication() {
    banner("E22", "partial replication: per-group sequencers vs the global total order");
    let secs = 5u64;
    println!(
        "  Fresh-key inserts over B disjoint tables (one table group each, six\n  closed-loop clients per group, backends costed at 4x CPU so apply\n  work is the bottleneck, {secs}s per cell). `global` is full\n  replication — one sequencer, every write applied at every backend, so\n  adding backends adds apply work as fast as it adds capacity and write\n  throughput saturates at ONE backend's apply rate. `partial` stripes\n  group g onto backend g % B (one replica): disjoint groups get their\n  own sequencer, certifier shard, and recovery-log stream, and a write\n  is applied only where its group lives — per-backend apply load stays\n  constant as B grows.\n"
    );
    let mut t = Table::new(&[
        "backends",
        "global tps",
        "partial tps",
        "speedup",
        "global p99 µs",
        "partial p99 µs",
    ]);
    let mut partial_by_b = Vec::new();
    for b in [2usize, 4, 8] {
        let (ga, _) = e22_arm(b, b, None, 6, 0.0, 4.0, secs);
        let (pa, _) = e22_arm(b, b, Some(striped_placement(b, b, 1)), 6, 0.0, 4.0, secs);
        let gtps = tps(ga.committed, secs);
        let ptps = tps(pa.committed, secs);
        partial_by_b.push((b, ptps, gtps));
        t.row(&[
            b.to_string(),
            format!("{gtps:.0}"),
            format!("{ptps:.0}"),
            format!("{:.2}x", ptps / gtps.max(1e-9)),
            ga.p99_tx_us.to_string(),
            pa.p99_tx_us.to_string(),
        ]);
    }
    t.print();
    let (b0, p0, g0) = partial_by_b[0];
    let (bn, pn, gn) = partial_by_b[partial_by_b.len() - 1];
    println!(
        "  write scaling {b0} -> {bn} backends: partial {:.2}x, global {:.2}x\n",
        pn / p0.max(1e-9),
        gn / g0.max(1e-9)
    );

    // The tax knob: 4 backends, paired host sets ({0,1} for groups 0+1,
    // {2,3} for groups 2+3), and a rising fraction of transactions that
    // write both partner tables — each one needs a prepare slot in both
    // groups' streams and commits only when every involved group votes
    // yes (the 2PC-ish path, Stage::CrossGroupWait).
    println!(
        "  cross-group commit tax: same cluster shape (4 backends, 4 groups,\n  partner pairs co-hosted), sweeping the fraction of transactions that\n  write both partner tables in one atomic commit:\n"
    );
    let paired = || {
        Placement::new(vec![vec![0, 1], vec![0, 1], vec![2, 3], vec![2, 3]])
            .assign("t0", 0)
            .assign("t1", 1)
            .assign("t2", 2)
            .assign("t3", 3)
    };
    let mut t = Table::new(&[
        "multi %",
        "tps",
        "vs 0%",
        "xgroup commits",
        "xgroup aborts",
        "mean tx µs",
        "p99 tx µs",
    ]);
    let mut base_tps = 0.0f64;
    for f in [0.0f64, 0.1, 0.2, 0.3] {
        let (agg, mw) = e22_arm(4, 4, Some(paired()), 2, f, 1.0, secs);
        let wtps = tps(agg.committed, secs);
        if f == 0.0 {
            base_tps = wtps;
        }
        t.row(&[
            format!("{:.0}", f * 100.0),
            format!("{wtps:.0}"),
            format!("{:.2}x", wtps / base_tps.max(1e-9)),
            mw.counters.xgroup_commits.to_string(),
            mw.counters.xgroup_aborts.to_string(),
            format!("{:.0}", agg.mean_tx_us),
            agg.p99_tx_us.to_string(),
        ]);
    }
    t.print();

    // Appendix (satellite to E17's attribution work): the conflict-class
    // cache. At statement delivery the middleware extracts each
    // statement's written tables (its conflict classes) from the plan
    // template for the recovery log; with the plan cache on, templates
    // are shared `Arc`s, so the extraction can be cached per template
    // instead of re-run per statement (class_cost_us models the walk).
    println!(
        "  appendix — conflict-class cache (statement mode, plan cache 256,\n  class derivation costed at 5 µs/stmt, 8-template sharded insert\n  stream): caching the per-template written-table extraction removes\n  the walk from every delivery after the first sight of a template:\n"
    );
    let class_arm = |class_cache: usize| {
        let mut cfg = group_commit_cfg(1, 0);
        cfg.mw.plan_cache = 256;
        cfg.mw.class_cost_us = 5;
        cfg.mw.class_cache = class_cache;
        let mut cluster = Cluster::build(cfg);
        let clients: Vec<NodeId> = (0..8)
            .map(|i| {
                cluster.add_client(ShardedInsert::new(10_000_000 * (i as i64 + 1)), |cc| {
                    cc.think_time_us = 200;
                    cc.request_timeout_us = 2_000_000;
                })
            })
            .collect();
        run_and_drain(&mut cluster, secs);
        (aggregate(&mut cluster, &clients), cluster.mw_metrics(0))
    };
    let mut t = Table::new(&["class cache", "hit %", "hits", "misses", "write tps", "p99 w µs"]);
    for cache in [0usize, 256] {
        let (agg, mw) = class_arm(cache);
        let lookups = mw.counters.cert_class_hits + mw.counters.cert_class_misses;
        t.row(&[
            if cache == 0 { "off".into() } else { cache.to_string() },
            if lookups == 0 {
                "-".into()
            } else {
                format!("{:.1}", 100.0 * mw.counters.cert_class_hits as f64 / lookups as f64)
            },
            mw.counters.cert_class_hits.to_string(),
            mw.counters.cert_class_misses.to_string(),
            format!("{:.0}", tps(agg.committed, secs)),
            mw.write_latency.quantile_us(0.99).to_string(),
        ]);
    }
    t.print();
    println!(
        "  (A trivial placement — one group hosted everywhere — is normalized\n   away at build time and runs the global single-sequencer path\n   byte-for-byte, so E1-E21 are unchanged by any of this; bench_pr9\n   asserts that identity on every run.)\n"
    );
}

// ---------------------------------------------------------------------
// E23 — elasticity under open-loop load: what a management operation
// costs while traffic keeps arriving (§5.1's "cost of management
// operations", measured instead of asserted)
// ---------------------------------------------------------------------

/// Windowed cost of one management operation, extracted from the driver's
/// per-second series. All times are virtual seconds.
struct OpCost {
    /// Completions/s over the pre-op baseline window.
    baseline_tps: f64,
    /// Worst single-second throughput dip after the op, as a fraction of
    /// baseline (0 = no dip).
    dip_depth: f64,
    /// Seconds spent below 90% of baseline after the op.
    dip_secs: usize,
    /// Sojourn p99 over the baseline window / over the op window.
    p99_base_us: u64,
    p99_op_us: u64,
    /// Seconds from the op until throughput sustains >= 95% of baseline
    /// for two consecutive seconds (-1 = never inside the window).
    recover_s: i64,
    /// Arrivals shed from the op onward: overload made visible.
    shed: u64,
}

fn op_cost(m: &replimid_workload::OpenLoopMetrics, base: (usize, usize), op_s: usize, end_s: usize) -> OpCost {
    let sec = |s: usize| *m.per_sec_completed.get(s).unwrap_or(&0) as f64;
    let (b0, b1) = base;
    let baseline_tps = m.completed_in(b0, b1) as f64 / (b1 - b0).max(1) as f64;
    let mut min_tps = f64::MAX;
    for s in op_s..end_s {
        min_tps = min_tps.min(sec(s));
    }
    let dip_depth = ((baseline_tps - min_tps) / baseline_tps.max(1e-9)).max(0.0);
    let dip_secs = (op_s..end_s).filter(|&s| sec(s) < 0.9 * baseline_tps).count();
    let p99_base_us = m.window_quantile_us(b0, b1, 0.99);
    let p99_op_us = m.window_quantile_us(op_s, (op_s + 6).min(end_s), 0.99);
    // Recovery = time until throughput is *permanently* back above 95% of
    // baseline within the window (the last bad second, plus one).
    let recover_s = match (op_s..end_s).rev().find(|&s| sec(s) < 0.95 * baseline_tps) {
        None => 0,
        Some(s) if s + 1 >= end_s => -1,
        Some(s) => (s + 1 - op_s) as i64,
    };
    let shed = m.per_sec_shed.iter().skip(op_s).take(end_s - op_s).sum();
    OpCost { baseline_tps, dip_depth, dip_secs, p99_base_us, p99_op_us, recover_s, shed }
}

fn cost_row(t: &mut Table, label: &str, c: &OpCost) {
    t.row(&[
        label.to_string(),
        format!("{:.0}", c.baseline_tps),
        format!("{:.0}%", c.dip_depth * 100.0),
        c.dip_secs.to_string(),
        c.p99_base_us.to_string(),
        c.p99_op_us.to_string(),
        format!("{:.2}x", c.p99_op_us as f64 / c.p99_base_us.max(1) as f64),
        if c.recover_s < 0 { "never".into() } else { format!("{}s", c.recover_s) },
        c.shed.to_string(),
    ]);
}

/// One elasticity arm: a 3-backend statement-replicated cluster under an
/// open-loop Poisson load, with admin operations injected mid-run and an
/// optional gray-fault (brownout) window on backend 2.
fn e23_arm(
    rate: f64,
    initial_removed: Vec<usize>,
    ops: Vec<(u64, AdminCmd)>,
    gray: Option<(u64, u64)>,
    secs: u64,
    stop_s: u64,
) -> (replimid_workload::OpenLoopMetrics, MwMetrics) {
    let mut schema = micro::schema("bench", 100);
    // Writes land in their own table: point reads are scans in this
    // engine, so a shared table would make read cost climb with every
    // insert and confound the management-op dips with table growth.
    schema.push("CREATE TABLE olw (k INT PRIMARY KEY, v INT NOT NULL)".to_string());
    let mut cfg = ClusterConfig::new(
        Mode::MultiMasterStatement { nondet: NondetPolicy::RewriteAndReject },
        schema,
        "bench",
    );
    cfg.backends_per_mw = 3;
    cfg.mw.policy = Policy::RoundRobin;
    cfg.mw.quarantine = Some(QuarantineConfig::default());
    cfg.mw.initial_removed = initial_removed;
    // Backends costed at 8x CPU (the E22 idiom): capacity sits near the
    // arrival rate, so losing or gaining a replica moves the needle.
    cfg.backend_speed = vec![8.0];
    let mut cluster = Cluster::build(cfg);
    let mut olc = replimid_workload::OpenLoopConfig::new(
        replimid_workload::ArrivalProcess::Poisson { rate_per_sec: rate },
    );
    olc.seed = 23;
    olc.write_permille = 100;
    olc.read_keys = 100;
    olc.write_table = "olw".to_string();
    olc.max_inflight = 64;
    olc.queue_max = 512;
    olc.stop_at_us = stop_s * 1_000_000;
    let driver = replimid_workload::add_open_loop(&mut cluster, 0, olc);
    for (at_us, cmd) in ops {
        cluster.admin_at(SimTime(at_us), 0, cmd);
    }
    if let Some((from_us, to_us)) = gray {
        cluster.brownout_backend_at(SimTime(from_us), 0, 2, 10.0);
        cluster.clear_brownout_at(SimTime(to_us), 0, 2);
    }
    cluster.run_for(dur::secs(secs));
    let m = replimid_workload::open_loop_metrics(&mut cluster, driver);
    if std::env::var("E23_DEBUG").is_ok() {
        eprintln!("completed/s {:?}", m.per_sec_completed);
        eprintln!("shed/s      {:?}", m.per_sec_shed);
    }
    (m, cluster.mw_metrics(0))
}

fn e23_elasticity() {
    banner("E23", "elasticity: management operations under open-loop load");
    let secs = 26u64;
    let stop_s = 24u64;
    let base = (4usize, 8usize);
    let op_s = 10usize;
    let end_s = stop_s as usize;

    // -- (a) management-operation cost table ----------------------------
    println!(
        "  Open-loop Poisson arrivals (the driver never waits: arrivals keep\n  coming at the configured rate, a 64-deep admission stage plus a\n  512-slot queue buffer bursts, and anything beyond that is SHED and\n  counted). 3 statement-replicated backends, 10% writes, op at t=10s,\n  baseline window 4..8s (before the
  gray arm's brownout onset). Dip depth is the worst one-second throughput\n  drop vs baseline; recovery is the first sustained return to 95%.\n"
    );
    let mut t = Table::new(&[
        "operation",
        "base tps",
        "dip",
        "dip s",
        "p99 base µs",
        "p99 op µs",
        "infl",
        "recover",
        "shed",
    ]);

    // Control: no operation at all (dip/shed must be ~0: the yardstick).
    let (m, _) = e23_arm(1_700.0, vec![], vec![], None, secs, stop_s);
    cost_row(&mut t, "none (control)", &op_cost(&m, base, op_s, end_s));

    // Scale-out: backend 2 starts Removed (spare), joins under load and
    // resyncs via the recovery machinery.
    let (m, mw) = e23_arm(
        1_700.0,
        vec![2],
        vec![(10_000_000, AdminCmd::AddBackend { backend: BackendId(2) })],
        None,
        secs,
        stop_s,
    );
    assert_eq!(mw.counters.backends_added, 1, "E23 add arm: join did not happen");
    cost_row(&mut t, "add backend", &op_cost(&m, base, op_s, end_s));

    // Scale-in: drain backend 1 gracefully (in-flight work completes).
    let (m, mw) = e23_arm(
        1_700.0,
        vec![],
        vec![(10_000_000, AdminCmd::DrainBackend { backend: BackendId(1) })],
        None,
        secs,
        stop_s,
    );
    assert_eq!(mw.counters.drains_completed, 1, "E23 drain arm: drain did not finish");
    assert_eq!(mw.counters.lost_transactions, 0, "E23 drain arm lost transactions");
    cost_row(&mut t, "drain backend", &op_cost(&m, base, op_s, end_s));

    // Rolling restart: drain + re-add backends 1 and 2 in sequence, the
    // way a fleet takes a software upgrade.
    let (m, mw) = e23_arm(
        1_700.0,
        vec![],
        vec![
            (10_000_000, AdminCmd::DrainBackend { backend: BackendId(1) }),
            (13_000_000, AdminCmd::AddBackend { backend: BackendId(1) }),
            (16_000_000, AdminCmd::DrainBackend { backend: BackendId(2) }),
            (19_000_000, AdminCmd::AddBackend { backend: BackendId(2) }),
        ],
        None,
        secs,
        stop_s,
    );
    assert_eq!(mw.counters.drains_completed, 2, "E23 rolling arm: a drain did not finish");
    assert_eq!(mw.counters.backends_added, 2, "E23 rolling arm: a re-add did not happen");
    cost_row(&mut t, "rolling restart", &op_cost(&m, base, op_s, end_s));

    // Composed with the PR 2 gray scheduler: backend 2 browns out (10x
    // service time) at 8s and the drain of backend 1 lands at 10s — the
    // elasticity operation happens DURING the brownout, with the breaker
    // and the drain machinery working the same rotation. The operator
    // scales back out (re-adds backend 1) at 16s, after the brownout
    // clears.
    let (m, mw) = e23_arm(
        1_700.0,
        vec![],
        vec![
            (10_000_000, AdminCmd::DrainBackend { backend: BackendId(1) }),
            (16_000_000, AdminCmd::AddBackend { backend: BackendId(1) }),
        ],
        Some((8_000_000, 14_000_000)),
        secs,
        stop_s,
    );
    assert_eq!(mw.counters.drains_completed, 1, "E23 gray arm: drain did not finish");
    cost_row(&mut t, "drain + gray b2", &op_cost(&m, base, op_s, end_s));
    t.print();

    // -- (b) overload is visible, not absorbed --------------------------
    println!(
        "\n  (b) the same cluster at ~2x the sustainable arrival rate: a closed\n  loop would slow its own offered load to match capacity and report a\n  modest latency bump; the open loop keeps arriving, fills the queue,\n  and sheds the excess — the overload signal operators actually see.\n"
    );
    let mut t = Table::new(&["rate/s", "arrivals", "completed", "shed", "p99 µs"]);
    for rate in [1_700.0f64, 5_000.0] {
        let (m, _) = e23_arm(rate, vec![], vec![], None, 14, 12);
        t.row(&[
            format!("{rate:.0}"),
            m.arrivals.to_string(),
            m.completed_ok.to_string(),
            m.shed.to_string(),
            m.sojourn.quantile_us(0.99).to_string(),
        ]);
    }
    t.print();

    // -- (c) WAN multi-site arm: examples/wan_sites.rs as data ----------
    println!(
        "\n  (c) three sites (EU/US/Asia), one backend per middleware, synchronous\n  statement ordering across sites; the open-loop driver is colocated\n  with the site-1 middleware, so every write (30% of arrivals) pays the\n  cross-ocean trip to the ordering site. At 600/s the LAN cluster\n  answers in microseconds while the WAN cluster's p50 passes 100ms —\n  every in-flight slot tied up in ~160ms ordering round trips; at 900/s\n  both saturate, and the WAN arm sheds twice as hard. (Fig. 4's\n  '1-copy-serializability is unlikely to be successful in the WAN',\n  measured under load that does not politely slow down.)\n"
    );
    let mut t = Table::new(&["net", "rate/s", "completed tps", "p50 µs", "p99 µs", "shed"]);
    for wan in [false, true] {
        for rate in [150.0f64, 600.0, 900.0] {
            let mut cfg = mm_statement_cfg(100);
            cfg.backends_per_mw = 1;
            cfg.middlewares = 3;
            let mut cluster = Cluster::build(cfg);
            let mut olc = replimid_workload::OpenLoopConfig::new(
                replimid_workload::ArrivalProcess::Poisson { rate_per_sec: rate },
            );
            olc.seed = 4;
            olc.write_permille = 300;
            olc.read_keys = 100;
            olc.max_inflight = 32;
            olc.queue_max = 256;
            olc.stop_at_us = 10_000_000;
            // The driver lives at site 1, not the ordering site: its
            // writes cross the ocean to get their total-order slot.
            let driver = replimid_workload::add_open_loop(&mut cluster, 1, olc);
            if wan {
                // Sites: db i + mw i = site i; the driver shares site 1.
                let site_of = move |n: NodeId| -> usize {
                    if n == driver {
                        1
                    } else if n.0 < 3 {
                        n.0
                    } else {
                        n.0 - 3
                    }
                };
                let all: Vec<NodeId> =
                    (0..cluster.sim.node_count()).map(NodeId).collect();
                for &a in &all {
                    for &b in &all {
                        if a != b && site_of(a) != site_of(b) {
                            cluster.sim.net.set_link(a, b, LinkSpec::wan());
                        }
                    }
                }
            }
            cluster.run_for(dur::secs(13));
            let m = replimid_workload::open_loop_metrics(&mut cluster, driver);
            t.row(&[
                if wan { "WAN" } else { "LAN" }.to_string(),
                format!("{rate:.0}"),
                format!("{:.0}", tps(m.completed_ok, 10)),
                m.sojourn.quantile_us(0.5).to_string(),
                m.sojourn.quantile_us(0.99).to_string(),
                m.shed.to_string(),
            ]);
        }
    }
    t.print();
}
