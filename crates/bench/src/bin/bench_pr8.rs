//! PR8 perf trajectory: the statement-processing fast path (parse-once
//! admission, plan cache, parsed-statement fan-out), emitted as
//! `BENCH_pr8.json` so successive PRs can track the pipeline's cost
//! instead of eyeballing the E17/E21 tables.
//!
//! Three measurements:
//!
//! * stage attribution — the E18 insert mix (8 templates, fresh literals
//!   every statement) under group commit 32/200µs with the plan cache off
//!   vs on; Admission + Execute stage-µs from the middleware trace, the
//!   combined cut, and the cache hit rate. The off arm is also run twice
//!   and must be bit-identical: `plan_cache = 0` is the compatibility arm
//!   and must not perturb one message, cost, or decision;
//! * E18 corner points — write tps at (low, saturated) load x (batch off,
//!   batch 32/1000µs), each with the cache off and on;
//! * wall-clock parser microbenches (`bench::timing`; middleware CPU is
//!   outside the simulator's cost model) — `parse_statement` vs the
//!   cache's hit path (normalize+bind) vs its miss path (normalize+
//!   template parse+bind). For one-row statements a hit costs about the
//!   same as one plain parse (binding clones the template, cancelling
//!   the parse saving) and about half a miss; the pipeline's wall-clock
//!   win is the three downstream parses it removes (delivery-time table
//!   extraction, certification, and every backend), which accrue on hit
//!   and miss alike.
//!
//! Usage:
//!   cargo run --release -p replimid-bench --bin bench_pr8
//!
//! With `--test` every simulated arm runs 1s and no JSON is written,
//! matching the other timing benches.

use replimid_bench::{group_commit_cfg, run_and_drain, timing, tps, ShardedInsert};
use replimid_core::{Cluster, MwMetrics, Stage};
use replimid_sql::{bind, normalize, parse_statement, CachedPlan};

/// The E17-appendix stage arm: single-row inserts over 8 disjoint tables,
/// 32 closed-loop clients under group commit 32/200µs, plan cache as given
/// (0 = off). Batching amortizes the network hop, so the Execute span is
/// mostly backend CPU and the parse share is visible.
fn stage_arm(plan_cache: usize, secs: u64) -> MwMetrics {
    let mut cfg = group_commit_cfg(32, 200);
    cfg.mw.plan_cache = plan_cache;
    let mut cluster = Cluster::build(cfg);
    for i in 0..32 {
        cluster.add_client(ShardedInsert::new(10_000_000 * (i as i64 + 1)), |cc| {
            cc.think_time_us = 100;
            cc.request_timeout_us = 2_000_000;
        });
    }
    run_and_drain(&mut cluster, secs);
    cluster.mw_metrics(0)
}

/// One E18 corner: the group-commit insert workload at the given load and
/// batch knobs, returning the write tps.
fn corner(clients: usize, think_us: u64, batch_max: usize, deadline_us: u64, plan_cache: usize, secs: u64) -> f64 {
    let mut cfg = group_commit_cfg(batch_max, deadline_us);
    cfg.mw.plan_cache = plan_cache;
    let mut cluster = Cluster::build(cfg);
    for i in 0..clients {
        cluster.add_client(ShardedInsert::new(10_000_000 * (i as i64 + 1)), |cc| {
            cc.think_time_us = think_us;
            cc.request_timeout_us = 2_000_000;
        });
    }
    run_and_drain(&mut cluster, secs);
    tps(cluster.mw_metrics(0).counters.writes, secs)
}

fn main() {
    let test_mode = std::env::args().any(|a| a == "--test");
    let secs: u64 = if test_mode { 1 } else { 5 };

    // -- stage attribution, cache off vs on ----------------------------
    let off = stage_arm(0, secs);
    let off2 = stage_arm(0, secs);
    // The compatibility arm must be deterministic and cache-silent.
    assert_eq!(off.counters, off2.counters, "cache-off arm is not bit-identical across reruns");
    let t1: Vec<_> = off.trace.completed().cloned().collect();
    let t2: Vec<_> = off2.trace.completed().cloned().collect();
    assert_eq!(t1, t2, "cache-off arm traces differ across reruns");
    assert_eq!(
        off.counters.plan_cache_hits + off.counters.plan_cache_misses,
        0,
        "cache-off arm consulted the plan cache"
    );
    let on = stage_arm(256, secs);
    let lookups = on.counters.plan_cache_hits + on.counters.plan_cache_misses;
    assert!(on.counters.plan_cache_hits > 0, "plan cache never hit on an 8-template mix");
    let hit_rate = on.counters.plan_cache_hits as f64 / lookups.max(1) as f64;

    let sum2 = |m: &MwMetrics| {
        let a = m.trace.stage_histogram(Stage::Admission);
        let e = m.trace.stage_histogram(Stage::Execute);
        (a.sum_us(), e.sum_us(), e.count(), e.mean_us())
    };
    let (adm_off, exec_off, n_off, mean_off) = sum2(&off);
    let (adm_on, exec_on, n_on, mean_on) = sum2(&on);
    let comb_off = adm_off + exec_off;
    let comb_on = adm_on + exec_on;
    let cut = 100.0 * comb_off.saturating_sub(comb_on) as f64 / comb_off.max(1) as f64;
    println!(
        "stage Admission+Execute: {:.1} ms off -> {:.1} ms on ({cut:.1}% cut), \
         Execute mean {mean_off:.0} -> {mean_on:.0} µs ({n_off}/{n_on} spans), \
         hit rate {:.1}%",
        comb_off as f64 / 1e3,
        comb_on as f64 / 1e3,
        100.0 * hit_rate,
    );

    // -- E18 corner points ---------------------------------------------
    let corners: [(&str, usize, u64, usize, u64); 4] = [
        ("low/batch-off", 2, 5_000, 1, 0),
        ("low/batch-32", 2, 5_000, 32, 1_000),
        ("saturated/batch-off", 32, 100, 1, 0),
        ("saturated/batch-32", 32, 100, 32, 1_000),
    ];
    let mut corner_rows = Vec::new();
    for (label, clients, think_us, batch, ddl) in corners {
        let t_off = corner(clients, think_us, batch, ddl, 0, secs);
        let t_on = corner(clients, think_us, batch, ddl, 256, secs);
        println!(
            "corner {label}: {t_off:.0} tps off -> {t_on:.0} tps on ({:.2}x)",
            t_on / t_off.max(1e-9)
        );
        corner_rows.push(format!(
            "    {{\"corner\": \"{label}\", \"write_tps_cache_off\": {t_off:.0}, \
             \"write_tps_cache_on\": {t_on:.0}}}"
        ));
    }

    // -- wall-clock: the admission paths side by side ------------------
    // (Non-deterministic, stdout only — the JSON stays seed-reproducible.)
    let sql = "INSERT INTO t3 VALUES (10000042, 1)";
    let nf = normalize(sql).expect("normalizable");
    let plan = CachedPlan::prepare(&nf).expect("template parses");
    let mut r = timing::Runner::from_args();
    r.bench("parse_statement (cache off)", 20_000, || {
        std::hint::black_box(parse_statement(std::hint::black_box(sql)).unwrap());
    });
    r.bench("normalize+bind (cache hit)", 20_000, || {
        let nf = normalize(std::hint::black_box(sql)).unwrap();
        std::hint::black_box(bind(&plan.template, &nf.params).unwrap());
    });
    r.bench("normalize+prepare+bind (miss)", 20_000, || {
        let nf = normalize(std::hint::black_box(sql)).unwrap();
        let p = CachedPlan::prepare(&nf).unwrap();
        std::hint::black_box(bind(&p.template, &nf.params).unwrap());
    });
    r.finish();

    if !test_mode {
        let json = format!(
            "{{\n  \"bench\": \"pr8_statement_fast_path\",\n  \
             \"stage_us\": {{\"admission_off\": {adm_off}, \"execute_off\": {exec_off}, \
             \"admission_on\": {adm_on}, \"execute_on\": {exec_on}, \
             \"combined_cut_pct\": {cut:.1}}},\n  \
             \"plan_cache\": {{\"hits\": {}, \"misses\": {}, \"hit_rate_pct\": {:.1}}},\n  \
             \"e18_corners\": [\n{}\n  ]\n}}\n",
            on.counters.plan_cache_hits,
            on.counters.plan_cache_misses,
            100.0 * hit_rate,
            corner_rows.join(",\n"),
        );
        std::fs::write("BENCH_pr8.json", &json).expect("write BENCH_pr8.json");
        println!("wrote BENCH_pr8.json");
    }
}
