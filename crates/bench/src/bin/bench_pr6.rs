//! PR6 perf trajectory: freshness-constrained read routing at the session
//! corner points of the E19 sweep, re-measured through the [`timing`]
//! harness and emitted as `BENCH_pr6.json` in the working directory so
//! successive PRs can track read throughput and latency at fixed fleet
//! sizes instead of eyeballing experiment tables.
//!
//! Usage:
//!   cargo run --release -p replimid-bench --bin bench_pr6
//!
//! With `--test` each point runs once (smoke mode) and no JSON is written,
//! matching the other timing benches.

use replimid_bench::timing::Runner;
use replimid_bench::tps;
use replimid_core::{
    Cluster, ClusterConfig, FleetMetrics, Mode, Policy, QuarantineConfig, ReadPolicy,
};
use replimid_gcs::HeartbeatConfig;
use replimid_simnet::dur;
use replimid_workload::micro;

/// Virtual seconds per measurement run. Short on purpose: the JSON tracks
/// trend direction across PRs, not publication-grade numbers (E19 does the
/// full sweep).
const SECS: u64 = 3;

fn run_point(sessions: usize, backends: usize) -> FleetMetrics {
    let mut cfg = ClusterConfig::new(
        Mode::MasterSlave {
            two_safe: false,
            ship_interval_us: 10_000,
            use_writesets: false,
            parallel_apply: false,
            read_master: false,
        },
        micro::sharded_schema("bench", sessions, 100),
        "bench",
    );
    cfg.backends_per_mw = backends;
    cfg.mw.policy = Policy::RoundRobin;
    cfg.mw.read_policy = ReadPolicy::Fresh;
    cfg.mw.quarantine = Some(QuarantineConfig::default());
    // Deliberate oversubscription (as in E19 part (c)): lenient tcp-default
    // detection so db-queue-delayed pongs don't evict live backends — a
    // 1-safe master eviction would lose acked writes and fail the RYW
    // assert for reasons E3 already covers.
    cfg.mw.heartbeat = HeartbeatConfig::tcp_default();
    cfg.mw.op_timeout_us = 75_000_000;
    let mut cluster = Cluster::build(cfg);
    let fleet = cluster.add_session_fleet(0, sessions, |fc| {
        // Think time grows with the fleet so both corner points offer the
        // same aggregate demand (~33k req/s, the E19 part (c) level) and
        // differ only in session-table scale; 100-key shards keep the
        // per-read scan cost constant (~140µs) across fleet sizes.
        fc.think_time_us = sessions as u64 * 30;
        fc.write_permille = 100;
        fc.keys_per_table = 100;
        fc.ramp_us = 1_000_000;
        fc.request_timeout_us = 30_000_000;
    });
    cluster.run_for(dur::secs(SECS));
    cluster.fleet_metrics(fleet)
}

fn main() {
    let test_mode = std::env::args().any(|a| a == "--test");
    let mut r = Runner::from_args();
    // The session-scale corners of the E19 sweep at 4 backends: a small
    // fleet (HashMap territory) and a 10^5 fleet, where the slab-backed
    // session table is the structure actually being priced.
    let points: [(&str, usize, usize); 2] =
        [("fleet_1k", 1_000, 4), ("fleet_100k", 100_000, 4)];
    let mut rows = Vec::new();
    for (name, sessions, backends) in points {
        let mut last: Option<FleetMetrics> = None;
        r.bench(name, 1, || {
            last = Some(run_point(sessions, backends));
        });
        // The simulator is deterministic, so every sample sees the same
        // virtual-time metrics; keep the last run's.
        let f = last.expect("bench closure runs at least once");
        assert_eq!(f.ryw_violations, 0, "{name}: stale read under ReadPolicy::Fresh");
        rows.push(format!(
            "    {{\"point\": \"{name}\", \"sessions\": {sessions}, \"backends\": {backends}, \
             \"read_tps\": {:.1}, \"p50_us\": {}, \"p99_us\": {}}}",
            tps(f.reads, SECS),
            f.read_latency.quantile_us(0.5),
            f.read_latency.quantile_us(0.99),
        ));
    }
    r.finish();
    if !test_mode {
        let json = format!(
            "{{\n  \"bench\": \"pr6_freshness_reads\",\n  \"virtual_secs\": {SECS},\n  \
             \"points\": [\n{}\n  ]\n}}\n",
            rows.join(",\n")
        );
        std::fs::write("BENCH_pr6.json", &json).expect("write BENCH_pr6.json");
        println!("wrote BENCH_pr6.json");
    }
}
