//! PR7 perf trajectory: measured crash-recovery MTTR across checkpoint
//! intervals, emitted as `BENCH_pr7.json` so successive PRs can track the
//! durability subsystem's recovery latency and replay throughput instead of
//! eyeballing the E20 tables.
//!
//! Each episode drives a durable 3-backend statement-mode cluster, crashes
//! one backend with an injected crash kind (clean / lost-tail / torn-tail)
//! while its WAL carries an unsynced tail, restarts it, and measures:
//!
//! * local MTTR — checkpoint load + WAL replay + device IO in virtual time
//!   (`DbNode::on_restart`, `Stage::Replay`);
//! * rejoin MTTR — the middleware's recovery-log window for the backend;
//! * replay rate — WAL entries re-applied per virtual second of local
//!   recovery;
//!
//! and asserts ZERO committed-transaction loss: whatever the crash destroyed
//! locally, the recovered replica must converge to the cluster checksum.
//!
//! Usage:
//!   cargo run --release -p replimid-bench --bin bench_pr7
//!
//! With `--test` one seed runs per interval (smoke mode) and no JSON is
//! written, matching the other timing benches.

use replimid_core::{Cluster, ClusterConfig, Mode, NondetPolicy};
use replimid_simnet::dur;
use replimid_sql::{CrashKind, DurabilityConfig};

struct SeqInsert4 {
    next: i64,
}

impl replimid_core::TxSource for SeqInsert4 {
    fn next_tx(&mut self, _r: &mut replimid_det::DetRng) -> Vec<String> {
        let k = self.next;
        self.next += 1;
        vec![format!("INSERT INTO t{} VALUES ({k}, 1)", k % 4)]
    }
}

struct Episode {
    local_us: u64,
    rejoin_us: u64,
    entries_replayed: u64,
    lost_local: u64,
}

fn episode(checkpoint_every: u64, kind: CrashKind, seed: u64) -> Episode {
    let mut schema = vec!["CREATE DATABASE bench".to_string(), "USE bench".to_string()];
    for i in 0..4 {
        schema.push(format!("CREATE TABLE t{i} (k INT PRIMARY KEY, v INT)"));
    }
    let mut cfg = ClusterConfig::new(
        Mode::MultiMasterStatement { nondet: NondetPolicy::RewriteAndReject },
        schema,
        "bench",
    );
    cfg.seed = seed;
    cfg.mw.recovery_batch = 256;
    cfg.engine.durability = Some(DurabilityConfig { checkpoint_every, fsync_every: 8, ..Default::default() });
    let mut cluster = Cluster::build(cfg);
    for i in 0..3 {
        cluster.add_client(SeqInsert4 { next: 10_000_000 * (i + 1) }, |cc| {
            cc.think_time_us = 400;
            cc.tx_limit = 1_200; // finite load: the tail drains to quiescence
        });
    }
    cluster.run_for(dur::millis(1_200));
    // Crash only once the WAL carries an unsynced tail (closed-loop pacing
    // otherwise parks the crash instant in the post-checkpoint lull where a
    // lossy crash has nothing to destroy — see E20).
    let mut wal = cluster.backend_wal_stats(0, 2).expect("durability on");
    for _ in 0..400 {
        if wal.wal_records >= 4 && wal.wal_bytes > wal.wal_synced_bytes {
            break;
        }
        cluster.run_for(500);
        wal = cluster.backend_wal_stats(0, 2).expect("durability on");
    }
    let pre_pos = cluster.backend_ordered_applied(0, 2);
    cluster.crash_backend_with(cluster.now() + 1, 0, 2, kind);
    cluster.run_for(dur::millis(300));
    cluster.restart_backend_at(cluster.now() + 1, 0, 2);
    cluster.run_for(dur::secs(8));

    let rec = cluster.backend_recovery(0, 2).expect("backend restarted durably");
    let mw = cluster.mw_metrics(0);
    let rejoin_us = mw
        .recoveries
        .iter()
        .find(|&&(b, _, _)| b == 2)
        .map(|&(_, s, e)| e - s)
        .expect("backend 2 rejoined");
    // The subsystem's contract: zero committed-transaction loss, whatever
    // the crash kind or checkpoint cadence.
    let sums = cluster.backend_checksums();
    assert!(
        sums[0].windows(2).all(|w| w[0] == w[1]),
        "committed state lost: backends diverged after {} crash (ckpt_every={checkpoint_every}, seed={seed}): {:?}",
        kind.name(),
        sums[0]
    );
    Episode {
        local_us: rec.local_us,
        rejoin_us,
        entries_replayed: rec.report.entries_replayed,
        lost_local: pre_pos.saturating_sub(rec.report.ordered_applied),
    }
}

fn quantile(sorted: &[u64], q: f64) -> u64 {
    if sorted.is_empty() {
        return 0;
    }
    let idx = ((sorted.len() - 1) as f64 * q).round() as usize;
    sorted[idx]
}

fn main() {
    let test_mode = std::env::args().any(|a| a == "--test");
    let kinds = [CrashKind::Clean, CrashKind::LostTail, CrashKind::TornTail];
    let seeds_per_interval: u64 = if test_mode { 1 } else { 6 };
    let mut rows = Vec::new();
    for checkpoint_every in [16u64, 256, 0] {
        let mut totals = Vec::new();
        let mut replayed = 0u64;
        let mut replay_us = 0u64;
        let mut lost_local = 0u64;
        for s in 0..seeds_per_interval {
            let kind = kinds[s as usize % kinds.len()];
            let e = episode(checkpoint_every, kind, 100 + s * 7);
            totals.push(e.local_us + e.rejoin_us);
            replayed += e.entries_replayed;
            replay_us += e.local_us;
            lost_local += e.lost_local;
        }
        totals.sort_unstable();
        let p50 = quantile(&totals, 0.5);
        let p99 = quantile(&totals, 0.99);
        let rate = if replay_us > 0 { replayed as f64 * 1e6 / replay_us as f64 } else { 0.0 };
        let label =
            if checkpoint_every == 0 { "never".to_string() } else { checkpoint_every.to_string() };
        println!(
            "ckpt_every={label:>5}  mttr p50 {:.1} ms  p99 {:.1} ms  replay {:.0} entries/s  \
             lost-then-refetched {lost_local}  committed lost 0",
            p50 as f64 / 1e3,
            p99 as f64 / 1e3,
            rate,
        );
        rows.push(format!(
            "    {{\"checkpoint_every\": \"{label}\", \"episodes\": {seeds_per_interval}, \
             \"mttr_p50_ms\": {:.1}, \"mttr_p99_ms\": {:.1}, \"replay_entries_per_sec\": {:.0}, \
             \"lost_locally_then_refetched\": {lost_local}, \"committed_tx_lost\": 0}}",
            p50 as f64 / 1e3,
            p99 as f64 / 1e3,
            rate,
        ));
    }
    if !test_mode {
        let json = format!(
            "{{\n  \"bench\": \"pr7_crash_recovery_mttr\",\n  \"crash_kinds\": [\"clean\", \
             \"lost-tail\", \"torn-tail\"],\n  \"points\": [\n{}\n  ]\n}}\n",
            rows.join(",\n")
        );
        std::fs::write("BENCH_pr7.json", &json).expect("write BENCH_pr7.json");
        println!("wrote BENCH_pr7.json");
    }
}
