//! Criterion macro-benchmarks: whole-cluster virtual-time throughput per
//! wall-clock second of simulation, for each replication mode. These gauge
//! the *simulator's* performance (events/sec), which bounds how much
//! virtual experimentation a wall-clock budget buys.

use criterion::{criterion_group, criterion_main, BatchSize, Criterion};
use replimid_bench::{mm_statement_cfg, SeqInsert};
use replimid_core::{Cluster, ClusterConfig, Mode};
use replimid_simnet::dur;
use replimid_workload::micro;

fn bench_cluster_modes(c: &mut Criterion) {
    let mut g = c.benchmark_group("one_virtual_second");
    g.sample_size(10);
    g.bench_function("mm_statement_3_replicas", |b| {
        b.iter_batched(
            || {
                let mut cluster = Cluster::build(mm_statement_cfg(100));
                cluster.add_client(SeqInsert::new(1_000_000), |cc| cc.think_time_us = 500);
                cluster
            },
            |mut cluster| cluster.run_for(dur::secs(1)),
            BatchSize::SmallInput,
        )
    });
    g.bench_function("mm_writeset_3_replicas", |b| {
        b.iter_batched(
            || {
                let cfg = ClusterConfig::new(
                    Mode::MultiMasterWriteset,
                    micro::schema("bench", 100),
                    "bench",
                );
                let mut cluster = Cluster::build(cfg);
                cluster.add_client(SeqInsert::new(1_000_000), |cc| cc.think_time_us = 500);
                cluster
            },
            |mut cluster| cluster.run_for(dur::secs(1)),
            BatchSize::SmallInput,
        )
    });
    g.bench_function("master_slave_1_safe", |b| {
        b.iter_batched(
            || {
                let mut cfg = ClusterConfig::new(
                    Mode::MasterSlave {
                        two_safe: false,
                        ship_interval_us: 20_000,
                        use_writesets: false,
                        parallel_apply: false,
                        read_master: true,
                    },
                    micro::schema("bench", 100),
                    "bench",
                );
                cfg.backends_per_mw = 2;
                let mut cluster = Cluster::build(cfg);
                cluster.add_client(SeqInsert::new(1_000_000), |cc| cc.think_time_us = 500);
                cluster
            },
            |mut cluster| cluster.run_for(dur::secs(1)),
            BatchSize::SmallInput,
        )
    });
    g.finish();
}

criterion_group!(benches, bench_cluster_modes);
criterion_main!(benches);
