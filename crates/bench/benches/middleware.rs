//! Macro-benchmarks: whole-cluster virtual-time throughput per wall-clock
//! second of simulation, for each replication mode. These gauge the
//! *simulator's* performance (events/sec), which bounds how much virtual
//! experimentation a wall-clock budget buys.

use replimid_bench::timing::Runner;
use replimid_bench::{mm_statement_cfg, SeqInsert};
use replimid_core::{Cluster, ClusterConfig, Mode};
use replimid_simnet::dur;
use replimid_workload::micro;

fn main() {
    let mut r = Runner::from_args();

    // Each iteration builds a fresh cluster and simulates one virtual
    // second (the setup cost is part of what a campaign pays per config).
    r.bench("mm_statement_3_replicas_1vs", 3, || {
        let mut cluster = Cluster::build(mm_statement_cfg(100));
        cluster.add_client(SeqInsert::new(1_000_000), |cc| cc.think_time_us = 500);
        cluster.run_for(dur::secs(1));
    });

    r.bench("mm_writeset_3_replicas_1vs", 3, || {
        let cfg =
            ClusterConfig::new(Mode::MultiMasterWriteset, micro::schema("bench", 100), "bench");
        let mut cluster = Cluster::build(cfg);
        cluster.add_client(SeqInsert::new(1_000_000), |cc| cc.think_time_us = 500);
        cluster.run_for(dur::secs(1));
    });

    r.bench("master_slave_1_safe_1vs", 3, || {
        let mut cfg = ClusterConfig::new(
            Mode::MasterSlave {
                two_safe: false,
                ship_interval_us: 20_000,
                use_writesets: false,
                parallel_apply: false,
                read_master: true,
            },
            micro::schema("bench", 100),
            "bench",
        );
        cfg.backends_per_mw = 2;
        let mut cluster = Cluster::build(cfg);
        cluster.add_client(SeqInsert::new(1_000_000), |cc| cc.think_time_us = 500);
        cluster.run_for(dur::secs(1));
    });

    r.finish();
}
