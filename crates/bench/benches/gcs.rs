//! Micro-benchmarks for the group-communication state machines: ordering
//! cost per publish and failure-detector tick cost.

use replimid_bench::timing::Runner;
use replimid_gcs::{
    FailureDetector, GcsConfig, GroupMember, HeartbeatConfig, MemberId, OrderProtocol,
};

fn main() {
    let mut r = Runner::from_args();

    for proto in [OrderProtocol::FixedSequencer, OrderProtocol::TokenRing] {
        let members: Vec<MemberId> = (0..5).map(MemberId).collect();
        let mut m = GroupMember::new(MemberId(0), members, GcsConfig::lan(proto), 0);
        let _ = m.start(0);
        let mut now = 0u64;
        r.bench(&format!("publish_and_order_{proto:?}"), 10_000, || {
            now += 10;
            std::hint::black_box(m.publish(now, now));
        });
    }

    let peers: Vec<MemberId> = (1..33).map(MemberId).collect();
    let mut fd = FailureDetector::new(HeartbeatConfig::lan(), peers.clone(), 0);
    let mut now = 0u64;
    r.bench("failure_detector_tick_32_peers", 10_000, || {
        now += 1_000;
        for &p in &peers {
            fd.heard_from(p, now);
        }
        std::hint::black_box(fd.tick(now));
    });

    r.finish();
}
