//! Criterion micro-benchmarks for the group-communication state machines:
//! ordering cost per publish and failure-detector tick cost.

use criterion::{criterion_group, criterion_main, Criterion};
use replimid_gcs::{FailureDetector, GcsConfig, GroupMember, HeartbeatConfig, MemberId, OrderProtocol};

fn bench_ordering(c: &mut Criterion) {
    for proto in [OrderProtocol::FixedSequencer, OrderProtocol::TokenRing] {
        let name = format!("publish_and_order_{proto:?}");
        c.bench_function(&name, |b| {
            let members: Vec<MemberId> = (0..5).map(MemberId).collect();
            let mut m =
                GroupMember::new(MemberId(0), members, GcsConfig::lan(proto), 0);
            let _ = m.start(0);
            let mut now = 0u64;
            b.iter(|| {
                now += 10;
                std::hint::black_box(m.publish(now, now))
            })
        });
    }
}

fn bench_detector(c: &mut Criterion) {
    c.bench_function("failure_detector_tick_32_peers", |b| {
        let peers: Vec<MemberId> = (1..33).map(MemberId).collect();
        let mut fd = FailureDetector::new(HeartbeatConfig::lan(), peers.clone(), 0);
        let mut now = 0u64;
        b.iter(|| {
            now += 1_000;
            for &p in &peers {
                fd.heard_from(p, now);
            }
            std::hint::black_box(fd.tick(now))
        })
    });
}

criterion_group!(benches, bench_ordering, bench_detector);
criterion_main!(benches);
