//! Criterion micro-benchmarks for the SQL engine substrate: parsing,
//! point reads/writes, MVCC version churn, and writeset application.

use criterion::{criterion_group, criterion_main, Criterion};
use replimid_sql::{parse_statement, Engine, Value};

fn bench_parser(c: &mut Criterion) {
    let sql = "UPDATE foo SET keyvalue = 'x', n = n + 1 WHERE id IN \
               (SELECT id FROM foo WHERE keyvalue IS NULL ORDER BY id LIMIT 10) AND n > 5";
    c.bench_function("parse_complex_update", |b| {
        b.iter(|| parse_statement(std::hint::black_box(sql)).unwrap())
    });
    c.bench_function("parse_point_select", |b| {
        b.iter(|| parse_statement(std::hint::black_box("SELECT v FROM t WHERE k = 42")).unwrap())
    });
}

fn setup_engine(rows: i64) -> (Engine, replimid_sql::ConnId) {
    let (mut e, conn) = Engine::with_database("b");
    e.execute(conn, "CREATE TABLE t (k INT PRIMARY KEY, v INT)").unwrap();
    for chunk in (0..rows).collect::<Vec<_>>().chunks(100) {
        let vals: Vec<String> = chunk.iter().map(|k| format!("({k}, 0)")).collect();
        e.execute(conn, &format!("INSERT INTO t VALUES {}", vals.join(","))).unwrap();
    }
    (e, conn)
}

fn bench_engine(c: &mut Criterion) {
    let (mut e, conn) = setup_engine(1_000);
    c.bench_function("point_select_1k_rows", |b| {
        b.iter(|| {
            let r = e.execute(conn, "SELECT v FROM t WHERE k = 500").unwrap();
            assert!(matches!(
                r.outcome.rows().unwrap().rows[0][0],
                Value::Int(_)
            ));
        })
    });
    c.bench_function("point_update_autocommit", |b| {
        b.iter(|| e.execute(conn, "UPDATE t SET v = v + 1 WHERE k = 500").unwrap())
    });
    c.bench_function("vacuum_after_updates", |b| {
        b.iter(|| {
            for _ in 0..10 {
                e.execute(conn, "UPDATE t SET v = v + 1 WHERE k = 7").unwrap();
            }
            e.vacuum()
        })
    });
}

fn bench_writesets(c: &mut Criterion) {
    let (mut src, conn) = setup_engine(100);
    let ws = {
        src.execute(conn, "BEGIN").unwrap();
        src.execute(conn, "UPDATE t SET v = v + 1 WHERE k < 50").unwrap();
        let ws = src.pending_writeset(conn).unwrap();
        src.execute(conn, "ROLLBACK").unwrap();
        ws
    };
    c.bench_function("apply_writeset_50_rows", |b| {
        let (mut dst, _) = setup_engine(100);
        b.iter(|| {
            // Apply then undo by applying the inverse is overkill; applying
            // the same images repeatedly is idempotent in effect and
            // exercises the same code path.
            dst.apply_writeset(std::hint::black_box(&ws)).unwrap()
        })
    });
    c.bench_function("checksum_1k_rows", |b| {
        let (e, _) = setup_engine(1_000);
        b.iter(|| std::hint::black_box(e.checksum_data()))
    });
}

criterion_group!(benches, bench_parser, bench_engine, bench_writesets);
criterion_main!(benches);
