//! Micro-benchmarks for the SQL engine substrate: parsing, point
//! reads/writes, MVCC version churn, and writeset application.

use replimid_bench::timing::Runner;
use replimid_sql::{parse_statement, Engine, Value};

fn setup_engine(rows: i64) -> (Engine, replimid_sql::ConnId) {
    let (mut e, conn) = Engine::with_database("b");
    e.execute(conn, "CREATE TABLE t (k INT PRIMARY KEY, v INT)").unwrap();
    for chunk in (0..rows).collect::<Vec<_>>().chunks(100) {
        let vals: Vec<String> = chunk.iter().map(|k| format!("({k}, 0)")).collect();
        e.execute(conn, &format!("INSERT INTO t VALUES {}", vals.join(","))).unwrap();
    }
    (e, conn)
}

fn main() {
    let mut r = Runner::from_args();

    let complex = "UPDATE foo SET keyvalue = 'x', n = n + 1 WHERE id IN \
                   (SELECT id FROM foo WHERE keyvalue IS NULL ORDER BY id LIMIT 10) AND n > 5";
    r.bench("parse_complex_update", 10_000, || {
        parse_statement(std::hint::black_box(complex)).unwrap();
    });
    r.bench("parse_point_select", 10_000, || {
        parse_statement(std::hint::black_box("SELECT v FROM t WHERE k = 42")).unwrap();
    });

    let (mut e, conn) = setup_engine(1_000);
    r.bench("point_select_1k_rows", 5_000, || {
        let res = e.execute(conn, "SELECT v FROM t WHERE k = 500").unwrap();
        assert!(matches!(res.outcome.rows().unwrap().rows[0][0], Value::Int(_)));
    });
    r.bench("point_update_autocommit", 5_000, || {
        e.execute(conn, "UPDATE t SET v = v + 1 WHERE k = 500").unwrap();
    });
    r.bench("vacuum_after_updates", 200, || {
        for _ in 0..10 {
            e.execute(conn, "UPDATE t SET v = v + 1 WHERE k = 7").unwrap();
        }
        e.vacuum();
    });

    let (mut src, conn) = setup_engine(100);
    let ws = {
        src.execute(conn, "BEGIN").unwrap();
        src.execute(conn, "UPDATE t SET v = v + 1 WHERE k < 50").unwrap();
        let ws = src.pending_writeset(conn).unwrap();
        src.execute(conn, "ROLLBACK").unwrap();
        ws
    };
    let (mut dst, _) = setup_engine(100);
    r.bench("apply_writeset_50_rows", 1_000, || {
        // Applying the same images repeatedly is idempotent in effect and
        // exercises the same code path as fresh writesets.
        dst.apply_writeset(std::hint::black_box(&ws)).unwrap();
    });
    let (chk, _) = setup_engine(1_000);
    r.bench("checksum_1k_rows", 1_000, || {
        std::hint::black_box(chk.checksum_data());
    });

    r.finish();
}
