//! Partial replication end-to-end properties: outcome preservation vs the
//! full-replication baseline, row flow restricted to hosting backends,
//! cross-group (2PC-style) commit atomicity including crash injection
//! mid-protocol, batched writeset fan-out equivalence, and the
//! trivial-placement byte-identity guarantee.

use replimid_bench::{aggregate, partial_ws_cfg, run_and_drain, striped_placement};
use replimid_core::{Cluster, Placement};
use replimid_det::detcheck;
use replimid_simnet::{NodeId, SimTime};
use replimid_sql::{CrashKind, DurabilityConfig, Outcome, ADMIN_PASSWORD, ADMIN_USER};
use replimid_workload::micro::DisjointInsert;

/// Total row count of `table` at backend `(0, b)`.
fn rows_at(cluster: &mut Cluster, b: usize, table: &str) -> i64 {
    cluster.with_backend_engine(0, b, |e| {
        let c = e.connect(ADMIN_USER, ADMIN_PASSWORD).expect("admin login");
        e.execute(c, "USE bench").unwrap();
        let out = e.execute(c, &format!("SELECT COUNT(*) FROM {table}")).unwrap().outcome;
        e.disconnect(c);
        match out {
            Outcome::Rows(rs) => rs.rows[0][0].as_int().unwrap(),
            other => panic!("expected rows, got {other:?}"),
        }
    })
}

/// The 4-backend / 3-group test placement: groups 0 and 1 share hosts
/// {0,1}; group 2 lives on {2,3}. Multi-group transactions over groups
/// 0+1 have a host intersection; none exists across the {0,1}/{2,3} cut.
fn test_placement() -> Placement {
    Placement::new(vec![vec![0, 1], vec![0, 1], vec![2, 3]])
        .assign("t0", 0)
        .assign("t1", 1)
        .assign("t2", 2)
}

#[test]
fn partial_smoke_rows_flow_only_to_hosts() {
    let mut cfg = partial_ws_cfg(3, 4, Some(test_placement()));
    cfg.seed = 7;
    let mut cluster = Cluster::build(cfg);
    let clients: Vec<NodeId> = (0..3)
        .map(|g| {
            cluster.add_client(DisjointInsert::new(1_000_000 * (g as i64 + 1), g), |cc| {
                cc.think_time_us = 1_000;
                cc.tx_limit = 600; // quiesce before measuring (see atomic test)
            })
        })
        .collect();
    run_and_drain(&mut cluster, 3);
    let agg = aggregate(&mut cluster, &clients);
    assert!(agg.committed > 100, "committed {}", agg.committed);
    assert_eq!(agg.failed, 0, "failed {}", agg.failed);
    // Rows land on every hosting backend and ONLY there.
    for (table, hosts) in [("t0", [0, 1]), ("t1", [0, 1]), ("t2", [2, 3])] {
        let counts: Vec<i64> = (0..4).map(|b| rows_at(&mut cluster, b, table)).collect();
        assert!(counts[hosts[0]] > 0, "{table} empty at host: {counts:?}");
        assert_eq!(counts[hosts[0]], counts[hosts[1]], "{table} hosts diverge: {counts:?}");
        for b in 0..4 {
            if !hosts.contains(&b) {
                assert_eq!(counts[b], 0, "{table} leaked to non-host {b}: {counts:?}");
            }
        }
    }
}

#[test]
fn cross_group_commit_smoke() {
    let mut cfg = partial_ws_cfg(3, 4, Some(test_placement()));
    cfg.seed = 11;
    let mut cluster = Cluster::build(cfg);
    // Every transaction spans groups 0 and 1 (partner pair), hosted by
    // backends {0,1}.
    let c = cluster.add_client(DisjointInsert::new(1, 0).with_multi(1.0), |cc| {
        cc.think_time_us = 1_000;
        cc.tx_limit = 500; // quiesce before measuring (see atomic test)
    });
    run_and_drain(&mut cluster, 3);
    let m = cluster.client_metrics(c);
    assert!(m.committed > 50, "committed {}", m.committed);
    assert_eq!(m.failed, 0, "failed {}", m.failed);
    let mw = cluster.mw_metrics(0);
    assert!(mw.counters.xgroup_commits > 0, "no cross-group commits recorded");
    // Atomicity: for every key, the t0 row and the t1 row exist together
    // or not at all, identically on both hosting backends.
    for b in [0usize, 1] {
        assert_eq!(
            rows_at(&mut cluster, b, "t0"),
            rows_at(&mut cluster, b, "t1"),
            "t0/t1 row counts diverge at backend {b}"
        );
    }
    assert_eq!(rows_at(&mut cluster, 0, "t0"), rows_at(&mut cluster, 1, "t0"));
}

/// Random placements, client mixes, and seeds: every committed single-group
/// insert lands exactly once on every hosting backend and nowhere else, the
/// hosting replicas of each group never diverge, and no client observes a
/// failure. This is the partial-replication analogue of one-copy
/// equivalence for disjoint workloads.
#[test]
fn partial_replication_preserves_outcomes() {
    detcheck::check("partial_replication_preserves_outcomes", 6, |rng| {
        let backends = 3 + (rng.gen_range(0..2) as usize);
        let groups = 2 + (rng.gen_range(0..3) as usize);
        // Random host set per group: each group gets 1..=backends distinct
        // hosts starting at a random offset (contiguous modulo ring keeps
        // the sets easy to reason about and always non-empty).
        let hosts: Vec<Vec<usize>> = (0..groups)
            .map(|_| {
                let n = 1 + (rng.gen_range(0..backends as u64) as usize);
                let start = rng.gen_range(0..backends as u64) as usize;
                (0..n).map(|i| (start + i) % backends).collect()
            })
            .collect();
        // The random ring can produce 1-host groups; no crash is injected
        // here, so opt out of the sole-host build-time rejection.
        let mut placement = Placement::new(hosts.clone()).allow_sole_host();
        for g in 0..groups {
            placement = placement.assign(&format!("t{g}"), g);
        }
        let mut cfg = partial_ws_cfg(groups, backends, Some(placement));
        cfg.seed = rng.gen();
        let mut cluster = Cluster::build(cfg);
        let n_clients = 2 + (rng.gen_range(0..3) as usize);
        let homes: Vec<usize> =
            (0..n_clients).map(|_| rng.gen_range(0..groups as u64) as usize).collect();
        let clients: Vec<NodeId> = homes
            .iter()
            .enumerate()
            .map(|(i, &g)| {
                cluster.add_client(DisjointInsert::new(1_000_000 * (i as i64 + 1), g), |cc| {
                    cc.think_time_us = 2_000;
                    cc.tx_limit = 300; // quiesce before measuring (see atomic test)
                })
            })
            .collect();
        run_and_drain(&mut cluster, 2);
        let agg = aggregate(&mut cluster, &clients);
        assert!(agg.committed > 0, "nothing committed (hosts {hosts:?})");
        assert_eq!(agg.failed, 0, "failures (hosts {hosts:?})");
        let mut total_rows = 0i64;
        for g in 0..groups {
            let table = format!("t{g}");
            let counts: Vec<i64> = (0..backends).map(|b| rows_at(&mut cluster, b, &table)).collect();
            for (b, &c) in counts.iter().enumerate() {
                if hosts[g].contains(&b) {
                    assert_eq!(c, counts[hosts[g][0]], "{table} hosts diverge: {counts:?}");
                } else {
                    assert_eq!(c, 0, "{table} leaked to non-host {b}: {counts:?}");
                }
            }
            total_rows += counts[hosts[g][0]];
        }
        // Exactly-once: one committed autocommit insert = one row, on every
        // host of its group and nowhere else.
        assert_eq!(total_rows as u64, agg.committed, "rows vs commits (hosts {hosts:?})");
    });
}

/// Cross-group transactions stay atomic under backend crashes injected
/// mid-protocol: after the crashed replica recovers, partner tables hold
/// identical row sets on both hosting backends — never a t0 row without
/// its t1 sibling. Crash kinds exercise the durable-image semantics
/// (clean, lost tail, torn tail) so prepared-but-undecided work crosses a
/// real recovery, not a fiat restart.
#[test]
fn cross_group_commit_is_atomic() {
    detcheck::check("cross_group_commit_is_atomic", 5, |rng| {
        let mut cfg = partial_ws_cfg(3, 4, Some(test_placement()));
        cfg.seed = rng.gen();
        cfg.engine.durability = Some(DurabilityConfig::default());
        let mut cluster = Cluster::build(cfg);
        let clients: Vec<NodeId> = (0..2)
            .map(|i| {
                cluster.add_client(
                    DisjointInsert::new(1_000_000 * (i as i64 + 1), 0).with_multi(1.0),
                    |cc| {
                        cc.think_time_us = 1_000;
                        // Quiesce well before the run ends: an unbounded
                        // client always has one last transaction mid-fan-out
                        // when the clock stops, and a half-applied final
                        // transaction reads as (phantom) divergence.
                        cc.tx_limit = 1_000;
                    },
                )
            })
            .collect();
        // Crash one of the two backends hosting groups 0+1 while 2PC
        // traffic is in full flight; restart it and let partial recovery
        // (dump from the surviving partner + per-group catch-up) finish.
        let victim = rng.gen_range(0..2) as usize;
        let kind = *detcheck::pick(rng, &[CrashKind::Clean, CrashKind::LostTail, CrashKind::TornTail]);
        let crash_us = 500_000u64 + rng.gen_range(0..1_000_000u64);
        cluster.crash_backend_with(SimTime(crash_us), 0, victim, kind);
        cluster.restart_backend_at(SimTime(crash_us + 200_000), 0, victim);
        run_and_drain(&mut cluster, 6);
        let agg = aggregate(&mut cluster, &clients);
        assert!(agg.committed > 0, "nothing committed (victim {victim} {kind:?})");
        assert!(agg.aborted + agg.failed < agg.committed, "mostly failing");
        if std::env::var("PARTIAL_DEBUG").is_ok() {
            let keys = |cluster: &mut Cluster, b: usize| -> std::collections::BTreeSet<i64> {
                cluster.with_backend_engine(0, b, |e| {
                    let c = e.connect(ADMIN_USER, ADMIN_PASSWORD).unwrap();
                    e.execute(c, "USE bench").unwrap();
                    let out = e.execute(c, "SELECT k FROM t0").unwrap().outcome;
                    e.disconnect(c);
                    match out {
                        Outcome::Rows(rs) => rs.rows.iter().map(|r| r[0].as_int().unwrap()).collect(),
                        other => panic!("{other:?}"),
                    }
                })
            };
            let k0 = keys(&mut cluster, 0);
            let k1 = keys(&mut cluster, 1);
            eprintln!("only at 0: {:?}", k0.difference(&k1).collect::<Vec<_>>());
            eprintln!("only at 1: {:?}", k1.difference(&k0).collect::<Vec<_>>());
            let mw = cluster.mw_metrics(0);
            eprintln!("counters: {:?}", mw.counters);
        }
        for b in [0usize, 1] {
            assert_eq!(
                rows_at(&mut cluster, b, "t0"),
                rows_at(&mut cluster, b, "t1"),
                "atomicity broken at backend {b} (victim {victim} {kind:?} @ {crash_us})"
            );
        }
        assert_eq!(
            rows_at(&mut cluster, 0, "t0"),
            rows_at(&mut cluster, 1, "t0"),
            "hosts diverged (victim {victim} {kind:?} @ {crash_us})"
        );
    });
}

/// Satellite 3: grouping remote writeset applications into one
/// `ApplyWritesetBatch` per backend per flush changes the transport only.
/// With a fixed transaction budget, the batched and unbatched runs commit
/// the same transactions and converge to identical data checksums.
#[test]
fn ws_apply_batch_outcomes_unchanged() {
    let run = |batched: bool| {
        let mut cfg = partial_ws_cfg(4, 3, None);
        cfg.seed = 13;
        cfg.mw.batch_max = 8;
        cfg.mw.batch_deadline_us = 200;
        cfg.mw.ws_apply_batch = batched;
        let mut cluster = Cluster::build(cfg);
        let clients: Vec<NodeId> = (0..4)
            .map(|g| {
                cluster.add_client(DisjointInsert::new(1_000_000 * (g as i64 + 1), g), |cc| {
                    cc.think_time_us = 500;
                    cc.tx_limit = 100;
                })
            })
            .collect();
        run_and_drain(&mut cluster, 5);
        let agg = aggregate(&mut cluster, &clients);
        let sums = cluster.backend_checksums();
        (agg.committed, agg.aborted, agg.failed, sums, cluster.mw_metrics(0))
    };
    let (c_off, a_off, f_off, sums_off, mw_off) = run(false);
    let (c_on, a_on, f_on, sums_on, mw_on) = run(true);
    assert_eq!((c_off, a_off, f_off), (400, 0, 0), "unbatched run incomplete");
    assert_eq!((c_on, a_on, f_on), (400, 0, 0), "batched run incomplete");
    assert_eq!(sums_off, sums_on, "batched fan-out changed backend contents");
    assert_eq!(mw_off.counters.ws_apply_batch_flushes, 0);
    assert!(mw_on.counters.ws_apply_batch_flushes > 0, "batch path never taken");
}

/// The compatibility guarantee the whole PR hangs on: a trivial placement
/// (one group hosted everywhere) is normalized away and runs the global
/// single-sequencer path byte-for-byte — same counters, same certifier
/// stats, same backend contents as no placement at all.
#[test]
fn trivial_placement_is_byte_identical() {
    let run = |placement: Option<Placement>| {
        let mut cfg = partial_ws_cfg(3, 3, placement);
        cfg.seed = 21;
        let mut cluster = Cluster::build(cfg);
        for g in 0..3usize {
            cluster.add_client(DisjointInsert::new(1_000_000 * (g as i64 + 1), g), |cc| {
                cc.think_time_us = 800;
            });
        }
        run_and_drain(&mut cluster, 3);
        let sums = cluster.backend_full_checksums();
        let groups = cluster.with_middleware(0, |m| m.partial_groups());
        (cluster.mw_metrics(0), sums, groups)
    };
    let (mw_none, sums_none, groups_none) = run(None);
    let trivial = Placement::new(vec![vec![0, 1, 2]]).assign("t0", 0).assign("t1", 0);
    let (mw_triv, sums_triv, groups_triv) = run(Some(trivial));
    assert_eq!(groups_none, 1);
    assert_eq!(groups_triv, 1, "trivial placement was not normalized away");
    assert_eq!(mw_none.counters, mw_triv.counters, "counters diverge");
    assert_eq!(mw_none.certifier, mw_triv.certifier, "certifier stats diverge");
    assert_eq!(sums_none, sums_triv, "backend contents diverge");
}

/// Striped placements compose with more groups than backends (several
/// groups per backend, one sequencer each) — the helper the E22 scaling
/// arm uses.
#[test]
fn striped_placement_validates() {
    for (tables, backends, replicas) in [(8usize, 4usize, 1usize), (4, 4, 2), (2, 2, 1)] {
        let p = striped_placement(tables, backends, replicas);
        assert!(p.validate(backends).is_ok());
        assert_eq!(p.groups(), tables);
        assert_eq!(p.group_of("t1"), 1 % tables);
    }
}
