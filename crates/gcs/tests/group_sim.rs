//! Group communication driven by the deterministic cluster simulator:
//! total order under crashes, view changes, joins, and the
//! detection-latency/false-positive tradeoff.

use replimid_det::detcheck;
use replimid_gcs::{
    Action, GcsConfig, GcsMsg, GroupMember, HeartbeatConfig, MemberId, OrderProtocol, View,
};
use replimid_simnet::{dur, ControlOp, Ctx, NetworkModel, NodeId, Sim, SimTime};

/// Simulation message: either group traffic or an external "please publish"
/// stimulus.
#[derive(Debug, Clone)]
enum TestMsg {
    Gcs(GcsMsg<u64>),
    Publish(u64),
}

/// A node hosting one group member.
struct MemberNode {
    member: GroupMember<u64>,
    delivered: Vec<(u64, u64)>, // (seq, payload)
    views: Vec<View>,
}

impl MemberNode {
    fn founding(me: usize, n: usize, protocol: OrderProtocol) -> Self {
        let members = (0..n).map(MemberId).collect();
        MemberNode {
            member: GroupMember::new(MemberId(me), members, GcsConfig::lan(protocol), 0),
            delivered: Vec::new(),
            views: Vec::new(),
        }
    }

    fn joiner(me: usize, contacts: Vec<usize>, protocol: OrderProtocol) -> Self {
        MemberNode {
            member: GroupMember::joiner(
                MemberId(me),
                contacts.into_iter().map(MemberId).collect(),
                GcsConfig::lan(protocol),
                0,
            ),
            delivered: Vec::new(),
            views: Vec::new(),
        }
    }

    fn run_actions(&mut self, ctx: &mut Ctx<'_, TestMsg>, actions: Vec<Action<u64>>) {
        for a in actions {
            match a {
                Action::Send { to, msg } => ctx.send(NodeId(to.0), TestMsg::Gcs(msg)),
                Action::Deliver { seq, payload, .. } => self.delivered.push((seq, payload)),
                Action::SetTimer { delay_us, tag } => ctx.set_timer(delay_us, tag),
                Action::ViewInstalled { view } => self.views.push(view),
                Action::Suspected { .. } => {}
            }
        }
    }
}

impl replimid_simnet::Actor<TestMsg> for MemberNode {
    fn on_start(&mut self, ctx: &mut Ctx<'_, TestMsg>) {
        let actions = self.member.start(ctx.now().micros());
        self.run_actions(ctx, actions);
    }

    fn on_message(&mut self, ctx: &mut Ctx<'_, TestMsg>, from: NodeId, msg: TestMsg) {
        let now = ctx.now().micros();
        let actions = match msg {
            TestMsg::Gcs(m) => self.member.on_message(MemberId(from.0), m, now),
            TestMsg::Publish(payload) => self.member.publish(payload, now),
        };
        self.run_actions(ctx, actions);
    }

    fn on_timer(&mut self, ctx: &mut Ctx<'_, TestMsg>, tag: u64) {
        let actions = self.member.on_timer(tag, ctx.now().micros());
        self.run_actions(ctx, actions);
    }
}

fn build_group(n: usize, protocol: OrderProtocol, seed: u64) -> (Sim<TestMsg>, Vec<NodeId>) {
    let mut sim = Sim::new(NetworkModel::lan(), seed);
    let nodes: Vec<NodeId> = (0..n)
        .map(|i| sim.add_node(MemberNode::founding(i, n, protocol)))
        .collect();
    (sim, nodes)
}

fn delivered(sim: &mut Sim<TestMsg>, node: NodeId) -> Vec<(u64, u64)> {
    sim.with_actor::<MemberNode, _>(node, |m| m.delivered.clone())
}

#[test]
fn sequencer_total_order_no_failures() {
    let (mut sim, nodes) = build_group(4, OrderProtocol::FixedSequencer, 1);
    for (i, &n) in nodes.iter().enumerate() {
        for k in 0..5u64 {
            sim.inject(SimTime(1_000 + k * 500), n, TestMsg::Publish((i as u64) * 100 + k));
        }
    }
    sim.run_until(SimTime::from_secs(2));
    let reference = delivered(&mut sim, nodes[0]);
    assert_eq!(reference.len(), 20, "all 20 messages delivered");
    for &n in &nodes[1..] {
        assert_eq!(delivered(&mut sim, n), reference, "same order everywhere");
    }
}

#[test]
fn token_ring_total_order_no_failures() {
    let (mut sim, nodes) = build_group(3, OrderProtocol::TokenRing, 2);
    for (i, &n) in nodes.iter().enumerate() {
        for k in 0..4u64 {
            sim.inject(SimTime(1_000 + k * 777), n, TestMsg::Publish((i as u64) * 10 + k));
        }
    }
    sim.run_until(SimTime::from_secs(3));
    let reference = delivered(&mut sim, nodes[0]);
    assert_eq!(reference.len(), 12);
    for &n in &nodes[1..] {
        assert_eq!(delivered(&mut sim, n), reference);
    }
}

#[test]
fn sequencer_crash_preserves_agreement() {
    let (mut sim, nodes) = build_group(4, OrderProtocol::FixedSequencer, 3);
    // Publish a burst, crash the sequencer mid-stream, keep publishing.
    for (i, &n) in nodes.iter().enumerate() {
        for k in 0..8u64 {
            sim.inject(SimTime(1_000 + k * 2_000), n, TestMsg::Publish((i as u64) * 100 + k));
        }
    }
    sim.schedule(SimTime(6_500), ControlOp::Crash(nodes[0]));
    sim.run_until(SimTime::from_secs(5));

    let survivors = &nodes[1..];
    let reference = delivered(&mut sim, survivors[0]);
    for &n in &survivors[1..] {
        assert_eq!(delivered(&mut sim, n), reference, "survivors agree");
    }
    // Exactly-once: no payload delivered twice.
    let mut payloads: Vec<u64> = reference.iter().map(|&(_, p)| p).collect();
    payloads.sort_unstable();
    let before = payloads.len();
    payloads.dedup();
    assert_eq!(before, payloads.len(), "duplicate delivery detected");
    // Every post-crash publish from survivors made it.
    for (i, _) in survivors.iter().enumerate() {
        let origin = i + 1;
        for k in 4..8u64 {
            let expect = (origin as u64) * 100 + k;
            assert!(
                payloads.contains(&expect),
                "message {expect} from survivor {origin} lost"
            );
        }
    }
    // A new view excluding the dead sequencer was installed.
    sim.with_actor::<MemberNode, _>(survivors[0], |m| {
        let v = m.member.view();
        assert!(!v.contains(MemberId(0)));
        assert_eq!(v.members.len(), 3);
    });
}

#[test]
fn token_holder_crash_regenerates_token() {
    let (mut sim, nodes) = build_group(3, OrderProtocol::TokenRing, 4);
    sim.inject(SimTime(1_000), nodes[1], TestMsg::Publish(11));
    // Crash node 0 (initial token holder / coordinator) almost immediately.
    sim.schedule(SimTime(1_200), ControlOp::Crash(nodes[0]));
    sim.inject(SimTime::from_millis(400), nodes[2], TestMsg::Publish(22));
    sim.run_until(SimTime::from_secs(5));
    let a = delivered(&mut sim, nodes[1]);
    let b = delivered(&mut sim, nodes[2]);
    assert_eq!(a, b, "survivors agree after token regeneration");
    let payloads: Vec<u64> = a.iter().map(|&(_, p)| p).collect();
    assert!(payloads.contains(&11) && payloads.contains(&22), "{payloads:?}");
}

#[test]
fn joiner_is_admitted_into_the_view() {
    let mut sim = Sim::new(NetworkModel::lan(), 5);
    let nodes: Vec<NodeId> = (0..3)
        .map(|i| sim.add_node(MemberNode::founding(i, 3, OrderProtocol::FixedSequencer)))
        .collect();
    let joiner = sim.add_node(MemberNode::joiner(3, vec![0, 1, 2], OrderProtocol::FixedSequencer));
    sim.run_until(SimTime::from_secs(1));
    sim.with_actor::<MemberNode, _>(joiner, |m| {
        assert!(m.member.is_joined(), "joiner admitted");
        assert_eq!(m.member.view().members.len(), 4);
    });
    // Messages published after the join reach the new member too.
    sim.inject(SimTime::from_secs(1) + 1, nodes[0], TestMsg::Publish(99));
    sim.run_until(SimTime::from_secs(2));
    sim.with_actor::<MemberNode, _>(joiner, |m| {
        assert!(m.delivered.iter().any(|&(_, p)| p == 99));
    });
}

#[test]
fn detection_latency_tracks_timeout() {
    // E11 in miniature: a 100ms timeout detects ~100ms after the crash; a
    // TCP-default timeout would not detect within the whole run.
    for (timeout_us, should_detect) in [(100_000u64, true), (75_000_000, false)] {
        let mut sim = Sim::new(NetworkModel::lan(), 6);
        let config = GcsConfig {
            heartbeat: HeartbeatConfig { interval_us: 20_000, timeout_us },
            protocol: OrderProtocol::FixedSequencer,
            token_timeout_us: 300_000,
            flush_timeout_us: 500_000,
            adaptive: None,
        };
        let members: Vec<MemberId> = (0..2).map(MemberId).collect();
        let a = sim.add_node(MemberNode {
            member: GroupMember::new(MemberId(0), members.clone(), config, 0),
            delivered: vec![],
            views: vec![],
        });
        let b = sim.add_node(MemberNode {
            member: GroupMember::new(MemberId(1), members, config, 0),
            delivered: vec![],
            views: vec![],
        });
        let _ = b;
        sim.schedule(SimTime::from_millis(500), ControlOp::Crash(NodeId(1)));
        sim.run_until(SimTime::from_secs(3));
        sim.with_actor::<MemberNode, _>(a, |m| {
            let detected = m.views.iter().any(|v| !v.contains(MemberId(1)));
            assert_eq!(detected, should_detect, "timeout={timeout_us}");
        });
    }
}

/// Agreement under a single crash: all survivors deliver the same
/// sequence, exactly once, for both ordering protocols.
fn check_agreement_under_crash(seed: u64, crash_node: usize, crash_at_ms: u64, token: bool) {
    let protocol = if token { OrderProtocol::TokenRing } else { OrderProtocol::FixedSequencer };
    let (mut sim, nodes) = build_group(4, protocol, seed);
    for (i, &n) in nodes.iter().enumerate() {
        for k in 0..6u64 {
            sim.inject(SimTime(500 + k * 3_000), n, TestMsg::Publish((i as u64) * 10 + k));
        }
    }
    sim.schedule(SimTime::from_millis(crash_at_ms), ControlOp::Crash(nodes[crash_node]));
    sim.run_until(SimTime::from_secs(8));

    let survivors: Vec<NodeId> = nodes
        .iter()
        .enumerate()
        .filter(|&(i, _)| i != crash_node)
        .map(|(_, &n)| n)
        .collect();
    let reference = delivered(&mut sim, survivors[0]);
    for &n in &survivors[1..] {
        assert_eq!(delivered(&mut sim, n), reference, "divergent survivor");
    }
    let mut payloads: Vec<u64> = reference.iter().map(|&(_, p)| p).collect();
    payloads.sort_unstable();
    let n_before = payloads.len();
    payloads.dedup();
    assert_eq!(n_before, payloads.len(), "duplicate delivery");
    // Survivor messages published well after the crash must appear.
    for (i, _) in nodes.iter().enumerate() {
        if i == crash_node {
            continue;
        }
        let last = (i as u64) * 10 + 5; // published at 15.5ms.. latest batch
        if crash_at_ms < 10 {
            assert!(payloads.contains(&last), "late message {last} from survivor {i} lost");
        }
    }
    let _ = dur::millis(1);
}

#[test]
fn agreement_under_random_crash() {
    detcheck::check("agreement_under_random_crash", 24, |rng| {
        let seed = rng.gen_range(0u64..500);
        let crash_node = rng.gen_range(0usize..4);
        let crash_at_ms = rng.gen_range(1u64..40);
        let token = rng.gen_bool(0.5);
        check_agreement_under_crash(seed, crash_node, crash_at_ms, token);
    });
}

/// Regression preserved from the proptest era
/// (group_sim.proptest-regressions, case 5f24ff55…): token ring, crash of
/// node 1 at 2ms, simulation seed 238.
#[test]
fn regression_token_ring_node1_crash_at_2ms_seed_238() {
    check_agreement_under_crash(238, 1, 2, true);
}

