//! Wire types and actions for the group communication substrate.

/// A group member. Distinct from any transport-level node id — the embedder
/// maps between them.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub struct MemberId(pub usize);

impl std::fmt::Display for MemberId {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "m{}", self.0)
    }
}

/// Monotonic view number.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord, Default)]
pub struct ViewId(pub u64);

/// The current membership. `members` is sorted; the lowest id is the
/// coordinator (and, in sequencer mode, the sequencer).
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct View {
    pub id: ViewId,
    pub members: Vec<MemberId>,
}

impl View {
    pub fn new(id: ViewId, mut members: Vec<MemberId>) -> Self {
        members.sort();
        members.dedup();
        View { id, members }
    }

    pub fn coordinator(&self) -> Option<MemberId> {
        self.members.first().copied()
    }

    pub fn contains(&self, m: MemberId) -> bool {
        self.members.binary_search(&m).is_ok()
    }

    /// Next member after `m` in ring order (token passing).
    pub fn successor(&self, m: MemberId) -> Option<MemberId> {
        if self.members.is_empty() {
            return None;
        }
        let idx = self.members.iter().position(|&x| x == m)?;
        Some(self.members[(idx + 1) % self.members.len()])
    }
}

/// Identifies a published message at its origin (dedup key together with
/// the origin id).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub struct MsgId(pub u64);

/// A message with its assigned global sequence number.
#[derive(Debug, Clone, PartialEq)]
pub struct OrderedRecord<P> {
    pub seq: u64,
    pub origin: MemberId,
    pub id: MsgId,
    pub payload: P,
}

/// Protocol selection (§4.3.4.1 compares these classes).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum OrderProtocol {
    /// Fixed sequencer: publishers unicast to the sequencer (lowest member
    /// id), which assigns sequence numbers and multicasts. One extra hop,
    /// but ordering latency is constant.
    FixedSequencer,
    /// Token ring: the token visits members in ring order; the holder
    /// orders its pending messages. No central hop, but ordering latency
    /// grows with group size.
    TokenRing,
}

/// Messages exchanged between group members.
#[derive(Debug, Clone, PartialEq)]
pub enum GcsMsg<P> {
    /// Publisher -> sequencer (sequencer mode only).
    Publish { id: MsgId, payload: P },
    /// Ordering broadcast.
    Ordered { view: ViewId, rec: OrderedRecord<P> },
    /// Liveness.
    Heartbeat,
    /// Coordinator -> members: report your state for view `proposed`.
    FlushReq { proposed: ViewId },
    /// Member -> coordinator: everything I have at or above my delivery
    /// horizon, plus the highest sequence number I have seen.
    FlushReply {
        proposed: ViewId,
        max_seen: u64,
        have: Vec<OrderedRecord<P>>,
    },
    /// Coordinator -> members: install the view; `fill` re-disseminates
    /// survivor-known messages; `next_seq` is where ordering resumes.
    NewView {
        view: View,
        next_seq: u64,
        fill: Vec<OrderedRecord<P>>,
    },
    /// The ordering token (token mode only).
    Token { view: ViewId, next_seq: u64 },
    /// A restarted/new member asking the coordinator to be admitted.
    JoinReq,
}

/// What the embedder must do after feeding an event into the member.
#[derive(Debug, Clone, PartialEq)]
pub enum Action<P> {
    /// Send a protocol message to another member.
    Send { to: MemberId, msg: GcsMsg<P> },
    /// Hand a totally-ordered payload to the application.
    Deliver { seq: u64, origin: MemberId, payload: P },
    /// Arm a timer; the embedder must call `on_timer(tag)` after `delay_us`.
    SetTimer { delay_us: u64, tag: u64 },
    /// A new view was installed (membership changed).
    ViewInstalled { view: View },
    /// This member now believes `member` has failed (diagnostics; the view
    /// change follows automatically).
    Suspected { member: MemberId },
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn view_ring_order() {
        let v = View::new(ViewId(1), vec![MemberId(3), MemberId(1), MemberId(5)]);
        assert_eq!(v.coordinator(), Some(MemberId(1)));
        assert_eq!(v.successor(MemberId(1)), Some(MemberId(3)));
        assert_eq!(v.successor(MemberId(5)), Some(MemberId(1)));
        assert_eq!(v.successor(MemberId(9)), None);
        assert!(v.contains(MemberId(3)));
        assert!(!v.contains(MemberId(2)));
    }

    #[test]
    fn view_dedups_members() {
        let v = View::new(ViewId(0), vec![MemberId(2), MemberId(2), MemberId(0)]);
        assert_eq!(v.members, vec![MemberId(0), MemberId(2)]);
    }
}
