//! In-order delivery buffer with duplicate suppression and a bounded
//! retransmission history (used by the view-change flush protocol).

use std::collections::{BTreeMap, HashSet, VecDeque};

use crate::types::{MemberId, MsgId, OrderedRecord};

/// How many delivered records each member retains for retransmission during
/// view changes. Must cover the divergence window between the fastest and
/// slowest member; sized generously.
pub const HISTORY_CAP: usize = 1024;

#[derive(Debug, Clone)]
pub struct DeliveryBuffer<P> {
    /// Next sequence number to deliver.
    next_seq: u64,
    /// Out-of-order arrivals waiting for their predecessors.
    pending: BTreeMap<u64, OrderedRecord<P>>,
    /// (origin, id) of everything ever delivered (dedup across re-publish).
    delivered_ids: HashSet<(MemberId, MsgId)>,
    /// Recently delivered records, for flush retransmission.
    history: VecDeque<OrderedRecord<P>>,
}

impl<P: Clone> DeliveryBuffer<P> {
    pub fn new() -> Self {
        DeliveryBuffer {
            next_seq: 1,
            pending: BTreeMap::new(),
            delivered_ids: HashSet::new(),
            history: VecDeque::new(),
        }
    }

    pub fn next_seq(&self) -> u64 {
        self.next_seq
    }

    /// Highest sequence number seen (delivered or buffered).
    pub fn max_seen(&self) -> u64 {
        let buffered = self.pending.keys().next_back().copied().unwrap_or(0);
        buffered.max(self.next_seq.saturating_sub(1))
    }

    pub fn is_delivered(&self, origin: MemberId, id: MsgId) -> bool {
        self.delivered_ids.contains(&(origin, id))
    }

    /// Accept a record; returns everything now deliverable, in order.
    /// A record whose (origin, id) was already delivered still *consumes*
    /// its sequence slot (drained silently) — otherwise a re-published
    /// duplicate would stall delivery at its assigned number forever.
    pub fn offer(&mut self, rec: OrderedRecord<P>) -> Vec<OrderedRecord<P>> {
        if rec.seq < self.next_seq {
            return Vec::new();
        }
        self.pending.entry(rec.seq).or_insert(rec);
        self.drain()
    }

    fn drain(&mut self) -> Vec<OrderedRecord<P>> {
        let mut out = Vec::new();
        while let Some(rec) = self.pending.remove(&self.next_seq) {
            self.next_seq += 1;
            if self.delivered_ids.insert((rec.origin, rec.id)) {
                self.history.push_back(rec.clone());
                if self.history.len() > HISTORY_CAP {
                    self.history.pop_front();
                }
                out.push(rec);
            }
        }
        out
    }

    /// Deliver everything buffered below `horizon`, skipping holes (view
    /// change resolution: sequence numbers nobody in the surviving group
    /// holds are abandoned). Afterwards `next_seq == horizon`.
    pub fn skip_to(&mut self, horizon: u64) -> Vec<OrderedRecord<P>> {
        let mut out = Vec::new();
        while self.next_seq < horizon {
            if let Some(rec) = self.pending.remove(&self.next_seq) {
                if self.delivered_ids.insert((rec.origin, rec.id)) {
                    self.history.push_back(rec.clone());
                    if self.history.len() > HISTORY_CAP {
                        self.history.pop_front();
                    }
                    out.push(rec);
                }
            }
            self.next_seq += 1;
        }
        // Anything buffered beyond the horizon stays pending.
        out.extend(self.drain());
        out
    }

    /// Records this member can retransmit during a flush: its recent history
    /// plus everything still buffered.
    pub fn retransmittable(&self) -> Vec<OrderedRecord<P>> {
        let mut out: Vec<OrderedRecord<P>> = self.history.iter().cloned().collect();
        out.extend(self.pending.values().cloned());
        out
    }

    pub fn pending_len(&self) -> usize {
        self.pending.len()
    }
}

impl<P: Clone> Default for DeliveryBuffer<P> {
    fn default() -> Self {
        Self::new()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn rec(seq: u64, id: u64) -> OrderedRecord<u32> {
        OrderedRecord { seq, origin: MemberId(0), id: MsgId(id), payload: id as u32 }
    }

    #[test]
    fn in_order_delivery() {
        let mut b = DeliveryBuffer::new();
        assert_eq!(b.offer(rec(2, 2)).len(), 0, "gap at 1");
        let out = b.offer(rec(1, 1));
        assert_eq!(out.iter().map(|r| r.seq).collect::<Vec<_>>(), vec![1, 2]);
        assert_eq!(b.next_seq(), 3);
    }

    #[test]
    fn duplicates_suppressed() {
        let mut b = DeliveryBuffer::new();
        assert_eq!(b.offer(rec(1, 1)).len(), 1);
        assert_eq!(b.offer(rec(1, 1)).len(), 0, "same seq again");
        // Same message re-published under a new seq is also suppressed.
        assert_eq!(b.offer(rec(2, 1)).len(), 0);
        assert_eq!(b.next_seq(), 3, "seq consumed even though suppressed");
    }

    #[test]
    fn skip_to_abandons_holes() {
        let mut b = DeliveryBuffer::new();
        b.offer(rec(3, 3));
        b.offer(rec(5, 5));
        let out = b.skip_to(5);
        // 1, 2, 4 were holes; 3 delivered; 5 drains after the horizon.
        assert_eq!(out.iter().map(|r| r.seq).collect::<Vec<_>>(), vec![3, 5]);
        assert_eq!(b.next_seq(), 6);
    }

    #[test]
    fn retransmittable_covers_history_and_pending() {
        let mut b = DeliveryBuffer::new();
        b.offer(rec(1, 1));
        b.offer(rec(3, 3));
        let r = b.retransmittable();
        let seqs: Vec<u64> = r.iter().map(|x| x.seq).collect();
        assert!(seqs.contains(&1) && seqs.contains(&3));
    }

    #[test]
    fn max_seen_tracks_both() {
        let mut b = DeliveryBuffer::new();
        assert_eq!(b.max_seen(), 0);
        b.offer(rec(1, 1));
        assert_eq!(b.max_seen(), 1);
        b.offer(rec(7, 7));
        assert_eq!(b.max_seen(), 7);
    }
}
