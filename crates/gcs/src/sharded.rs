//! Per-group sequencers for partial replication: one independent
//! [`GroupMember`] state machine per table group, each with its own dense
//! sequence space, so publishes in disjoint groups never serialize against
//! each other. This is the Sutra–Shapiro shape — total order only among
//! the replicas a transaction actually touches — realized as N copies of
//! the existing sans-I/O member instead of a new protocol.
//!
//! Every returned action is tagged with the group it belongs to; the
//! embedding actor re-tags wire messages and timers per group (each
//! member's [`TICK_TAG`] becomes a distinct per-group timer tag on the
//! host's clock) and feeds deliveries into that group's certifier shard.

use crate::member::{GcsConfig, GroupMember};
use crate::types::{Action, GcsMsg, MemberId, View};

/// A bundle of independent per-group sequencer state machines.
pub struct ShardedMember<P> {
    shards: Vec<GroupMember<P>>,
}

impl<P: Clone> ShardedMember<P> {
    /// `groups` members over the same peer set: group `g`'s stream is
    /// sequenced by `shards[g]`, all coordinated by the same (lowest-id)
    /// peer under `FixedSequencer` but with fully independent seq spaces.
    pub fn new(me: MemberId, peers: Vec<MemberId>, config: GcsConfig, now: u64, groups: usize) -> Self {
        assert!(groups > 0, "need at least one group");
        let shards = (0..groups)
            .map(|_| GroupMember::new(me, peers.clone(), config, now))
            .collect();
        ShardedMember { shards }
    }

    pub fn groups(&self) -> usize {
        self.shards.len()
    }

    pub fn view(&self, group: usize) -> &View {
        self.shards[group].view()
    }

    /// Start every shard's heartbeat machinery. Actions come back tagged
    /// `(group, action)`; the caller maps each shard's `TICK_TAG` timer
    /// onto a distinct per-group tag.
    pub fn start(&mut self, now: u64) -> Vec<(usize, Action<P>)> {
        self.collect(|s, g| s.shards[g].start(now))
    }

    /// Publish `payload` into group `group`'s total order only.
    pub fn publish(&mut self, group: usize, payload: P, now: u64) -> Vec<(usize, Action<P>)> {
        let acts = self.shards[group].publish(payload, now);
        acts.into_iter().map(|a| (group, a)).collect()
    }

    /// Feed a wire message addressed to `group`'s shard.
    pub fn on_message(
        &mut self,
        group: usize,
        from: MemberId,
        msg: GcsMsg<P>,
        now: u64,
    ) -> Vec<(usize, Action<P>)> {
        let acts = self.shards[group].on_message(from, msg, now);
        acts.into_iter().map(|a| (group, a)).collect()
    }

    /// Fire `group`'s tick (the caller resolved the per-group tag back to
    /// the group index and passes the member-level tag through).
    pub fn on_timer(&mut self, group: usize, tag: u64, now: u64) -> Vec<(usize, Action<P>)> {
        let acts = self.shards[group].on_timer(tag, now);
        acts.into_iter().map(|a| (group, a)).collect()
    }

    /// Next sequence number group `group` will deliver (its dense,
    /// group-local position space).
    pub fn next_deliver_seq(&self, group: usize) -> u64 {
        self.shards[group].next_deliver_seq()
    }

    fn collect(
        &mut self,
        mut f: impl FnMut(&mut Self, usize) -> Vec<Action<P>>,
    ) -> Vec<(usize, Action<P>)> {
        let mut out = Vec::new();
        for g in 0..self.shards.len() {
            out.extend(f(self, g).into_iter().map(|a| (g, a)));
        }
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::types::OrderProtocol;

    fn run_single_member(groups: usize) -> ShardedMember<u64> {
        let cfg = GcsConfig::lan(OrderProtocol::FixedSequencer);
        ShardedMember::new(MemberId(0), vec![MemberId(0)], cfg, 0, groups)
    }

    fn delivered(acts: &[(usize, Action<u64>)]) -> Vec<(usize, u64, u64)> {
        acts.iter()
            .filter_map(|(g, a)| match a {
                Action::Deliver { seq, payload, .. } => Some((*g, *seq, *payload)),
                _ => None,
            })
            .collect()
    }

    #[test]
    fn groups_have_independent_dense_seq_spaces() {
        let mut m = run_single_member(3);
        let _ = m.start(0);
        let mut got = Vec::new();
        // Interleave publishes across groups; each group's seqs must be
        // dense from 1 regardless of the global interleaving.
        for (i, g) in [0usize, 1, 0, 2, 1, 0].iter().enumerate() {
            got.extend(delivered(&m.publish(*g, 100 + i as u64, i as u64)));
        }
        let seqs = |g: usize| -> Vec<u64> {
            got.iter().filter(|(gg, _, _)| *gg == g).map(|(_, s, _)| *s).collect()
        };
        assert_eq!(seqs(0), vec![1, 2, 3]);
        assert_eq!(seqs(1), vec![1, 2]);
        assert_eq!(seqs(2), vec![1]);
        assert_eq!(m.next_deliver_seq(0), 4);
        assert_eq!(m.next_deliver_seq(2), 2);
    }

    #[test]
    fn publish_in_one_group_does_not_touch_others() {
        let mut m = run_single_member(2);
        let _ = m.start(0);
        let acts = m.publish(1, 7, 0);
        assert!(acts.iter().all(|(g, _)| *g == 1));
        assert_eq!(m.next_deliver_seq(0), 1, "group 0 untouched");
    }
}
