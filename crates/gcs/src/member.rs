//! The group member state machine: total-order multicast (fixed sequencer
//! or token ring) with view-synchronous membership.
//!
//! Design notes (sans-I/O): every entry point returns a list of [`Action`]s
//! the embedder must carry out. The member never touches a clock or a
//! socket — `now` is always passed in, which keeps the protocol unit- and
//! property-testable and lets the same code run under the deterministic
//! simulator.
//!
//! View changes use a stop-the-world flush (virtual-synchrony style):
//!
//! 1. The lowest non-suspected member proposes view v+1 and sends
//!    `FlushReq` to the surviving members.
//! 2. On `FlushReq`, members enter the *flushing* state — they stop
//!    ordering, drop in-flight `Ordered`/`Publish` traffic from the old
//!    view, and reply with everything they can retransmit.
//! 3. The coordinator merges the replies into a `fill`, picks the resume
//!    sequence number past everything any survivor saw, and broadcasts
//!    `NewView`.
//! 4. On `NewView`, members install the fill, abandon sequence holes nobody
//!    holds, and re-publish their still-undelivered local messages.
//!
//! The paper's §4.3.4.1 point that "it is inefficient to perform state
//! transfers when a new replica joins a cluster using group communication"
//! is honored: a joiner gets membership only; database state transfer is the
//! replication middleware's job (recovery log / dump), not the GCS's.

use std::collections::{BTreeMap, HashSet};

use crate::buffer::DeliveryBuffer;
use crate::detector::{AdaptiveConfig, FailureDetector, FdEvent, HeartbeatConfig};
use crate::types::{
    Action, GcsMsg, MemberId, MsgId, OrderProtocol, OrderedRecord, View, ViewId,
};

/// Timer tag used by the member's single periodic tick.
pub const TICK_TAG: u64 = 1;

#[derive(Debug, Clone, Copy, PartialEq)]
pub struct GcsConfig {
    pub heartbeat: HeartbeatConfig,
    pub protocol: OrderProtocol,
    /// Token silence (token mode) after which the coordinator regenerates
    /// the token via a view change.
    pub token_timeout_us: u64,
    /// How long a flush may stall before another coordinator retries.
    pub flush_timeout_us: u64,
    /// When set, the failure detector learns per-peer suspicion thresholds
    /// (accrual-style) instead of applying the fixed heartbeat timeout, so
    /// a browned-out peer's stretched heartbeats do not cascade into false
    /// view changes (§4.3.4.2).
    pub adaptive: Option<AdaptiveConfig>,
}

impl GcsConfig {
    pub fn lan(protocol: OrderProtocol) -> Self {
        GcsConfig {
            heartbeat: HeartbeatConfig::lan(),
            protocol,
            token_timeout_us: 300_000,
            flush_timeout_us: 500_000,
            adaptive: None,
        }
    }

    /// LAN tuning with adaptive suspicion enabled.
    pub fn lan_adaptive(protocol: OrderProtocol) -> Self {
        GcsConfig { adaptive: Some(AdaptiveConfig::lan()), ..Self::lan(protocol) }
    }
}

#[derive(Debug)]
struct Proposal<P> {
    proposed: ViewId,
    members: Vec<MemberId>,
    awaiting: HashSet<MemberId>,
    fill: BTreeMap<u64, OrderedRecord<P>>,
    max_seen: u64,
    /// When the proposal was started (diagnostics; retry uses flush_started).
    #[allow(dead_code)]
    started_at: u64,
}

/// One member of the group.
#[derive(Debug)]
pub struct GroupMember<P> {
    me: MemberId,
    config: GcsConfig,
    view: View,
    fd: FailureDetector,
    buffer: DeliveryBuffer<P>,
    next_msg_id: u64,
    /// Published but not yet delivered back to us: re-published on view
    /// change (at-least-once; the delivery buffer dedups).
    pending_local: Vec<(MsgId, P)>,
    /// Next sequence number to assign (meaningful for the sequencer / the
    /// token holder / a flush coordinator).
    next_assign: u64,
    has_token: bool,
    last_token_seen: u64,
    flushing: bool,
    flush_started: u64,
    proposal: Option<Proposal<P>>,
    /// False for a joiner until its first view installs.
    joined: bool,
    /// Contact points for joining.
    contacts: Vec<MemberId>,
    /// Traffic tagged with a view newer than ours: the sender already
    /// installed a view whose NewView is still in flight to us. Replayed
    /// after installation (dropping it would open permanent sequence gaps).
    future_msgs: Vec<(MemberId, GcsMsg<P>)>,
}

impl<P: Clone> GroupMember<P> {
    /// A founding member: the initial membership is common knowledge.
    pub fn new(me: MemberId, initial: Vec<MemberId>, config: GcsConfig, now: u64) -> Self {
        let view = View::new(ViewId(0), initial);
        assert!(view.contains(me), "founding member must be in the initial view");
        let peers: Vec<MemberId> = view.members.iter().copied().filter(|&m| m != me).collect();
        let fd = match config.adaptive {
            Some(ad) => FailureDetector::new_adaptive(config.heartbeat, ad, peers, now),
            None => FailureDetector::new(config.heartbeat, peers, now),
        };
        let contacts = view.members.clone();
        GroupMember {
            me,
            config,
            view,
            fd,
            buffer: DeliveryBuffer::new(),
            next_msg_id: 1,
            pending_local: Vec::new(),
            next_assign: 1,
            // The coordinator holds the first token.
            has_token: false,
            last_token_seen: now,
            flushing: false,
            flush_started: 0,
            proposal: None,
            joined: true,
            contacts,
            future_msgs: Vec::new(),
        }
    }

    /// A (re)joining member: not in any view until admitted.
    pub fn joiner(me: MemberId, contacts: Vec<MemberId>, config: GcsConfig, now: u64) -> Self {
        let mut m = GroupMember::new(me, vec![me], config, now);
        m.joined = false;
        m.contacts = contacts;
        m.view = View::new(ViewId(0), vec![me]);
        m
    }

    pub fn me(&self) -> MemberId {
        self.me
    }

    pub fn view(&self) -> &View {
        &self.view
    }

    pub fn current_view(&self) -> View {
        self.view.clone()
    }

    pub fn is_joined(&self) -> bool {
        self.joined
    }

    fn sequencer(&self) -> Option<MemberId> {
        self.view.coordinator()
    }

    fn i_am_sequencer(&self) -> bool {
        self.sequencer() == Some(self.me)
    }

    /// The lowest view member this member does not suspect.
    fn lowest_alive(&self) -> Option<MemberId> {
        self.view
            .members
            .iter()
            .copied()
            .find(|&m| m == self.me || !self.fd.is_suspected(m))
    }

    /// Start the member: arms the periodic tick; token-mode coordinators
    /// mint the first token; joiners solicit admission.
    pub fn start(&mut self, now: u64) -> Vec<Action<P>> {
        let mut actions = vec![Action::SetTimer {
            delay_us: self.config.heartbeat.interval_us,
            tag: TICK_TAG,
        }];
        if self.joined
            && self.config.protocol == OrderProtocol::TokenRing
            && self.i_am_sequencer()
        {
            self.has_token = true;
            self.last_token_seen = now;
        }
        if !self.joined {
            for &c in &self.contacts.clone() {
                if c != self.me {
                    actions.push(Action::Send { to: c, msg: GcsMsg::JoinReq });
                }
            }
        }
        actions
    }

    /// Publish a payload for total-order delivery to the whole group.
    pub fn publish(&mut self, payload: P, now: u64) -> Vec<Action<P>> {
        let id = MsgId(self.next_msg_id);
        self.next_msg_id += 1;
        self.pending_local.push((id, payload.clone()));
        if self.flushing || !self.joined {
            return Vec::new(); // re-published after the view installs
        }
        match self.config.protocol {
            OrderProtocol::FixedSequencer => {
                if self.i_am_sequencer() {
                    self.order(self.me, id, payload, now)
                } else if let Some(seq) = self.sequencer() {
                    vec![Action::Send { to: seq, msg: GcsMsg::Publish { id, payload } }]
                } else {
                    Vec::new()
                }
            }
            OrderProtocol::TokenRing => {
                if self.has_token {
                    let mut actions = self.order(self.me, id, payload, now);
                    actions.extend(self.pass_token(now));
                    actions
                } else {
                    Vec::new() // ordered when the token arrives
                }
            }
        }
    }

    /// Assign the next sequence number and disseminate.
    fn order(&mut self, origin: MemberId, id: MsgId, payload: P, _now: u64) -> Vec<Action<P>> {
        let rec = OrderedRecord { seq: self.next_assign, origin, id, payload };
        self.next_assign += 1;
        let mut actions = Vec::new();
        for &m in &self.view.members {
            if m != self.me {
                actions.push(Action::Send {
                    to: m,
                    msg: GcsMsg::Ordered { view: self.view.id, rec: rec.clone() },
                });
            }
        }
        actions.extend(self.accept_record(rec));
        actions
    }

    fn accept_record(&mut self, rec: OrderedRecord<P>) -> Vec<Action<P>> {
        let delivered = self.buffer.offer(rec);
        self.emit_deliveries(delivered)
    }

    fn emit_deliveries(&mut self, records: Vec<OrderedRecord<P>>) -> Vec<Action<P>> {
        let mut actions = Vec::new();
        for rec in records {
            if rec.origin == self.me {
                self.pending_local.retain(|(id, _)| *id != rec.id);
            }
            actions.push(Action::Deliver { seq: rec.seq, origin: rec.origin, payload: rec.payload });
        }
        actions
    }

    /// Feed an incoming protocol message.
    pub fn on_message(&mut self, from: MemberId, msg: GcsMsg<P>, now: u64) -> Vec<Action<P>> {
        // Any traffic proves liveness.
        let _ = self.fd.heard_from(from, now);
        match msg {
            GcsMsg::Heartbeat => Vec::new(),
            GcsMsg::Publish { id, payload } => {
                if self.flushing || !self.joined {
                    return Vec::new(); // origin re-publishes after NewView
                }
                match self.config.protocol {
                    OrderProtocol::FixedSequencer if self.i_am_sequencer() => {
                        self.order(from, id, payload, now)
                    }
                    _ => Vec::new(),
                }
            }
            GcsMsg::Ordered { view, rec } => {
                if view > self.view.id {
                    self.future_msgs.push((from, GcsMsg::Ordered { view, rec }));
                    return Vec::new();
                }
                if self.flushing || view != self.view.id || !self.joined {
                    return Vec::new();
                }
                self.accept_record(rec)
            }
            GcsMsg::FlushReq { proposed } => {
                if proposed <= self.view.id {
                    return Vec::new();
                }
                self.flushing = true;
                self.flush_started = now;
                self.has_token = false;
                vec![Action::Send {
                    to: from,
                    msg: GcsMsg::FlushReply {
                        proposed,
                        max_seen: self.buffer.max_seen(),
                        have: self.buffer.retransmittable(),
                    },
                }]
            }
            GcsMsg::FlushReply { proposed, max_seen, have } => {
                self.on_flush_reply(from, proposed, max_seen, have, now)
            }
            GcsMsg::NewView { view, next_seq, fill } => self.install_view(view, next_seq, fill, now),
            GcsMsg::Token { view, next_seq } => {
                if view > self.view.id {
                    self.future_msgs.push((from, GcsMsg::Token { view, next_seq }));
                    return Vec::new();
                }
                if view != self.view.id || self.flushing || !self.joined {
                    return Vec::new();
                }
                self.last_token_seen = now;
                self.has_token = true;
                self.next_assign = self.next_assign.max(next_seq);
                let mut actions = Vec::new();
                for (id, payload) in self.pending_local.clone() {
                    if !self.buffer.is_delivered(self.me, id) {
                        actions.extend(self.order(self.me, id, payload, now));
                    }
                }
                actions.extend(self.pass_token(now));
                actions
            }
            GcsMsg::JoinReq => {
                // Only the coordinator admits; others ignore (the joiner
                // solicits everyone).
                if self.lowest_alive() == Some(self.me) && self.joined {
                    let mut members: Vec<MemberId> = self
                        .view
                        .members
                        .iter()
                        .copied()
                        .filter(|&m| m == self.me || !self.fd.is_suspected(m))
                        .collect();
                    if !members.contains(&from) {
                        members.push(from);
                    }
                    self.start_proposal(members, now)
                } else {
                    Vec::new()
                }
            }
        }
    }

    fn pass_token(&mut self, _now: u64) -> Vec<Action<P>> {
        if self.config.protocol != OrderProtocol::TokenRing || !self.has_token {
            return Vec::new();
        }
        // Next non-suspected member in ring order.
        let mut candidate = self.me;
        for _ in 0..self.view.members.len() {
            candidate = match self.view.successor(candidate) {
                Some(c) => c,
                None => return Vec::new(),
            };
            if candidate == self.me {
                return Vec::new(); // alone (or everyone suspected): keep it
            }
            if !self.fd.is_suspected(candidate) {
                self.has_token = false;
                return vec![Action::Send {
                    to: candidate,
                    msg: GcsMsg::Token { view: self.view.id, next_seq: self.next_assign },
                }];
            }
        }
        Vec::new()
    }

    fn start_proposal(&mut self, members: Vec<MemberId>, now: u64) -> Vec<Action<P>> {
        let proposed = ViewId(
            self.view
                .id
                .0
                .max(self.proposal.as_ref().map(|p| p.proposed.0).unwrap_or(0))
                + 1,
        );
        let view_members = View::new(proposed, members).members;
        let mut awaiting: HashSet<MemberId> =
            view_members.iter().copied().filter(|&m| m != self.me).collect();
        // A joiner being admitted has nothing to flush and may not know the
        // old view: don't wait on members outside the current view.
        awaiting.retain(|m| self.view.contains(*m));
        let mut fill = BTreeMap::new();
        for rec in self.buffer.retransmittable() {
            fill.insert(rec.seq, rec);
        }
        let max_seen = self.buffer.max_seen();
        self.flushing = true;
        self.flush_started = now;
        self.has_token = false;
        let done = awaiting.is_empty();
        self.proposal = Some(Proposal {
            proposed,
            members: view_members.clone(),
            awaiting,
            fill,
            max_seen,
            started_at: now,
        });
        let mut actions = Vec::new();
        for &m in &view_members {
            if m != self.me && self.view.contains(m) {
                actions.push(Action::Send { to: m, msg: GcsMsg::FlushReq { proposed } });
            }
        }
        if done {
            actions.extend(self.finish_proposal(now));
        }
        actions
    }

    fn on_flush_reply(
        &mut self,
        from: MemberId,
        proposed: ViewId,
        max_seen: u64,
        have: Vec<OrderedRecord<P>>,
        now: u64,
    ) -> Vec<Action<P>> {
        let Some(p) = self.proposal.as_mut() else { return Vec::new() };
        if p.proposed != proposed {
            return Vec::new();
        }
        p.max_seen = p.max_seen.max(max_seen);
        for rec in have {
            p.fill.entry(rec.seq).or_insert(rec);
        }
        p.awaiting.remove(&from);
        if p.awaiting.is_empty() {
            self.finish_proposal(now)
        } else {
            Vec::new()
        }
    }

    fn finish_proposal(&mut self, now: u64) -> Vec<Action<P>> {
        let Some(p) = self.proposal.take() else { return Vec::new() };
        let fill_max = p.fill.keys().next_back().copied().unwrap_or(0);
        let next_seq = p.max_seen.max(fill_max) + 1;
        let view = View::new(p.proposed, p.members);
        let fill: Vec<OrderedRecord<P>> = p.fill.into_values().collect();
        let mut actions = Vec::new();
        for &m in &view.members {
            if m != self.me {
                actions.push(Action::Send {
                    to: m,
                    msg: GcsMsg::NewView {
                        view: view.clone(),
                        next_seq,
                        fill: fill.clone(),
                    },
                });
            }
        }
        actions.extend(self.install_view(view, next_seq, fill, now));
        actions
    }

    fn install_view(
        &mut self,
        view: View,
        next_seq: u64,
        fill: Vec<OrderedRecord<P>>,
        now: u64,
    ) -> Vec<Action<P>> {
        if view.id <= self.view.id && self.joined {
            return Vec::new();
        }
        if !view.contains(self.me) {
            // Excluded (we were suspected): become a joiner again.
            self.joined = false;
            return Vec::new();
        }
        self.view = view.clone();
        self.joined = true;
        self.flushing = false;
        self.proposal = None;
        let peers: Vec<MemberId> =
            view.members.iter().copied().filter(|&m| m != self.me).collect();
        self.fd.reset_peers(peers, now);
        self.last_token_seen = now;

        let mut delivered = Vec::new();
        for rec in fill {
            delivered.extend(self.buffer.offer(rec));
        }
        delivered.extend(self.buffer.skip_to(next_seq));
        self.next_assign = next_seq;
        let mut actions = self.emit_deliveries(delivered);
        actions.push(Action::ViewInstalled { view: view.clone() });

        // Token mode: the coordinator mints the new token.
        if self.config.protocol == OrderProtocol::TokenRing && self.i_am_sequencer() {
            self.has_token = true;
        }

        // Re-publish what is still undelivered.
        for (id, payload) in self.pending_local.clone() {
            if self.buffer.is_delivered(self.me, id) {
                continue;
            }
            match self.config.protocol {
                OrderProtocol::FixedSequencer => {
                    if self.i_am_sequencer() {
                        actions.extend(self.order(self.me, id, payload, now));
                    } else if let Some(seq) = self.sequencer() {
                        actions.push(Action::Send {
                            to: seq,
                            msg: GcsMsg::Publish { id, payload },
                        });
                    }
                }
                OrderProtocol::TokenRing => {
                    if self.has_token {
                        actions.extend(self.order(self.me, id, payload, now));
                    }
                }
            }
        }
        if self.config.protocol == OrderProtocol::TokenRing && self.has_token {
            actions.extend(self.pass_token(now));
        }

        // Replay traffic that arrived ahead of this installation; anything
        // for a still-newer view goes back into the stash.
        let stashed = std::mem::take(&mut self.future_msgs);
        for (from, msg) in stashed {
            actions.extend(self.on_message(from, msg, now));
        }
        actions
    }

    /// Periodic tick: heartbeats, failure detection, flush retry, token
    /// regeneration, join solicitation.
    pub fn on_timer(&mut self, tag: u64, now: u64) -> Vec<Action<P>> {
        if tag != TICK_TAG {
            return Vec::new();
        }
        let mut actions = vec![Action::SetTimer {
            delay_us: self.config.heartbeat.interval_us,
            tag: TICK_TAG,
        }];
        if !self.joined {
            for &c in &self.contacts.clone() {
                if c != self.me {
                    actions.push(Action::Send { to: c, msg: GcsMsg::JoinReq });
                }
            }
            return actions;
        }
        for &m in &self.view.members {
            if m != self.me {
                actions.push(Action::Send { to: m, msg: GcsMsg::Heartbeat });
            }
        }
        let events = self.fd.tick(now);
        let mut membership_changed = false;
        for ev in events {
            match ev {
                FdEvent::Suspect(m) => {
                    actions.push(Action::Suspected { member: m });
                    membership_changed = true;
                }
                FdEvent::Restore(_) => {}
            }
        }
        let i_coordinate = self.lowest_alive() == Some(self.me);
        if membership_changed && i_coordinate && self.proposal.is_none() {
            let members: Vec<MemberId> = self
                .view
                .members
                .iter()
                .copied()
                .filter(|&m| m == self.me || !self.fd.is_suspected(m))
                .collect();
            actions.extend(self.start_proposal(members, now));
        }
        // Flush stall: retry or take over.
        if self.flushing && now.saturating_sub(self.flush_started) > self.config.flush_timeout_us {
            if let Some(p) = &self.proposal {
                // Our own proposal stalled: someone we awaited died. Re-propose
                // without the silent members.
                let awaiting = p.awaiting.clone();
                let members: Vec<MemberId> = p
                    .members
                    .iter()
                    .copied()
                    .filter(|m| !awaiting.contains(m))
                    .collect();
                self.proposal = None;
                actions.extend(self.start_proposal(members, now));
            } else if i_coordinate {
                // We were flushing for a coordinator that vanished.
                let members: Vec<MemberId> = self
                    .view
                    .members
                    .iter()
                    .copied()
                    .filter(|&m| m == self.me || !self.fd.is_suspected(m))
                    .collect();
                actions.extend(self.start_proposal(members, now));
            } else {
                self.flush_started = now; // keep waiting, re-check later
            }
        }
        // Token loss detection.
        if self.config.protocol == OrderProtocol::TokenRing
            && !self.flushing
            && !self.has_token
            && self.view.members.len() > 1
            && i_coordinate
            && now.saturating_sub(self.last_token_seen) > self.config.token_timeout_us
            && self.proposal.is_none()
        {
            let members: Vec<MemberId> = self
                .view
                .members
                .iter()
                .copied()
                .filter(|&m| m == self.me || !self.fd.is_suspected(m))
                .collect();
            actions.extend(self.start_proposal(members, now));
        }
        actions
    }

    /// Diagnostics.
    pub fn next_deliver_seq(&self) -> u64 {
        self.buffer.next_seq()
    }

    pub fn pending_local_len(&self) -> usize {
        self.pending_local.len()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::types::GcsMsg;

    fn group3(proto: OrderProtocol) -> Vec<GroupMember<u32>> {
        let members: Vec<MemberId> = (0..3).map(MemberId).collect();
        (0..3)
            .map(|i| GroupMember::new(MemberId(i), members.clone(), GcsConfig::lan(proto), 0))
            .collect()
    }

    fn sends(actions: &[Action<u32>]) -> Vec<(MemberId, GcsMsg<u32>)> {
        actions
            .iter()
            .filter_map(|a| match a {
                Action::Send { to, msg } => Some((*to, msg.clone())),
                _ => None,
            })
            .collect()
    }

    fn delivers(actions: &[Action<u32>]) -> Vec<(u64, u32)> {
        actions
            .iter()
            .filter_map(|a| match a {
                Action::Deliver { seq, payload, .. } => Some((*seq, *payload)),
                _ => None,
            })
            .collect()
    }

    #[test]
    fn sequencer_orders_and_self_delivers() {
        let mut g = group3(OrderProtocol::FixedSequencer);
        // Member 0 is the sequencer: publishing orders immediately.
        let actions = g[0].publish(7, 10);
        assert_eq!(delivers(&actions), vec![(1, 7)], "self-delivery at seq 1");
        // And it broadcast Ordered to the other two members.
        let outs = sends(&actions);
        assert_eq!(outs.len(), 2);
        assert!(outs
            .iter()
            .all(|(_, m)| matches!(m, GcsMsg::Ordered { rec, .. } if rec.seq == 1)));
    }

    #[test]
    fn non_sequencer_publish_routes_to_sequencer() {
        let mut g = group3(OrderProtocol::FixedSequencer);
        let actions = g[1].publish(9, 10);
        let outs = sends(&actions);
        assert_eq!(outs.len(), 1);
        assert_eq!(outs[0].0, MemberId(0), "unicast to the sequencer");
        assert!(delivers(&actions).is_empty(), "nothing delivered yet");
        assert_eq!(g[1].pending_local_len(), 1);

        // Feed the publish to the sequencer; it orders and broadcasts.
        let (_, publish) = outs.into_iter().next().unwrap();
        let seq_actions = g[0].on_message(MemberId(1), publish, 20);
        let ordered: Vec<_> = sends(&seq_actions);
        assert_eq!(ordered.len(), 2);

        // Deliver the Ordered back at the origin: pending clears.
        let (_, msg) = ordered.into_iter().find(|(to, _)| *to == MemberId(1)).unwrap();
        let origin_actions = g[1].on_message(MemberId(0), msg, 30);
        assert_eq!(delivers(&origin_actions), vec![(1, 9)]);
        assert_eq!(g[1].pending_local_len(), 0);
    }

    #[test]
    fn token_holder_orders_pending_and_passes_token() {
        let mut g = group3(OrderProtocol::TokenRing);
        for m in g.iter_mut() {
            let _ = m.start(0);
        }
        // Member 1 queues a publish (no token yet).
        let a = g[1].publish(5, 10);
        assert!(sends(&a).is_empty() && delivers(&a).is_empty());
        // Member 0 (initial holder) passes the token on its next order or
        // publish; simulate handing the token directly to member 1.
        let vid = g[1].view().id;
        let a = g[1].on_message(MemberId(0), GcsMsg::Token { view: vid, next_seq: 1 }, 20);
        // It ordered its pending message and passed the token to member 2.
        assert_eq!(delivers(&a), vec![(1, 5)]);
        let outs = sends(&a);
        assert!(outs
            .iter()
            .any(|(to, m)| *to == MemberId(2) && matches!(m, GcsMsg::Token { next_seq: 2, .. })));
    }

    #[test]
    fn flush_reply_carries_retransmittable_state() {
        let mut g = group3(OrderProtocol::FixedSequencer);
        // Deliver one ordered record at member 2.
        let rec = OrderedRecord { seq: 1, origin: MemberId(0), id: MsgId(1), payload: 42u32 };
        let _ = g[2].on_message(
            MemberId(0),
            GcsMsg::Ordered { view: ViewId(0), rec },
            10,
        );
        // A coordinator proposes view 1: member 2 enters flushing and
        // replies with what it has.
        let a = g[2].on_message(MemberId(1), GcsMsg::FlushReq { proposed: ViewId(1) }, 20);
        let outs = sends(&a);
        assert_eq!(outs.len(), 1);
        match &outs[0].1 {
            GcsMsg::FlushReply { proposed, max_seen, have } => {
                assert_eq!(*proposed, ViewId(1));
                assert_eq!(*max_seen, 1);
                assert_eq!(have.len(), 1);
            }
            other => panic!("expected FlushReply, got {other:?}"),
        }
        // While flushing, ordered traffic from the old view is dropped.
        let rec2 = OrderedRecord { seq: 2, origin: MemberId(0), id: MsgId(2), payload: 43u32 };
        let a = g[2].on_message(MemberId(0), GcsMsg::Ordered { view: ViewId(0), rec: rec2 }, 30);
        assert!(delivers(&a).is_empty());
    }

    #[test]
    fn new_view_excluding_me_makes_me_a_joiner() {
        let mut g = group3(OrderProtocol::FixedSequencer);
        let view = View::new(ViewId(1), vec![MemberId(0), MemberId(1)]);
        let _ = g[2].on_message(
            MemberId(0),
            GcsMsg::NewView { view, next_seq: 1, fill: Vec::new() },
            10,
        );
        assert!(!g[2].is_joined(), "excluded member must rejoin explicitly");
    }

    #[test]
    fn stale_view_messages_rejected_future_stashed() {
        let mut g = group3(OrderProtocol::FixedSequencer);
        // A future-view Ordered is stashed, not delivered.
        let rec = OrderedRecord { seq: 1, origin: MemberId(0), id: MsgId(1), payload: 1u32 };
        let a = g[1].on_message(
            MemberId(0),
            GcsMsg::Ordered { view: ViewId(3), rec: rec.clone() },
            10,
        );
        assert!(delivers(&a).is_empty());
        // Installing view 3 replays the stash.
        let view = View::new(ViewId(3), vec![MemberId(0), MemberId(1), MemberId(2)]);
        let a = g[1].on_message(
            MemberId(0),
            GcsMsg::NewView { view, next_seq: 1, fill: Vec::new() },
            20,
        );
        assert_eq!(delivers(&a), vec![(1, 1)], "stashed record delivered after install");
    }
}
