//! # replimid-gcs
//!
//! Sans-I/O group communication for database replication (paper §4.3.4.1):
//! totally-ordered multicast via a fixed sequencer or a token ring, a
//! heartbeat failure detector with tunable timeouts (§4.3.4.2), and
//! view-synchronous membership with a stop-the-world flush on view changes.
//!
//! Everything is a pure state machine: callers feed messages, timers, and
//! publishes, and carry out the returned [`Action`]s. The replication
//! middleware embeds [`GroupMember`] into simulator actors; experiment E14
//! measures the two ordering protocols against each other, and E11 sweeps
//! the failure-detector timeout tradeoff.

pub mod buffer;
pub mod detector;
pub mod member;
pub mod sharded;
pub mod types;

pub use buffer::DeliveryBuffer;
pub use detector::{AdaptiveConfig, AdaptiveThreshold, FailureDetector, FdEvent, HeartbeatConfig};
pub use member::{GcsConfig, GroupMember, TICK_TAG};
pub use sharded::ShardedMember;
pub use types::{Action, GcsMsg, MemberId, MsgId, OrderProtocol, OrderedRecord, View, ViewId};
