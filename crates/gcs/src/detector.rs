//! Heartbeat failure detector (§4.3.4.2).
//!
//! The paper's complaint: drivers lean on TCP keepalive defaults ("30
//! seconds to 2 hours"), which makes failover hopeless, while aggressive
//! timeouts misclassify slow-but-alive nodes under load. This detector is
//! parameterized so experiment E11 can sweep exactly that tradeoff: a
//! "TCP-default" configuration is just `HeartbeatConfig::tcp_default()`.

use std::collections::HashMap;

use crate::types::MemberId;

#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct HeartbeatConfig {
    /// How often each member emits heartbeats.
    pub interval_us: u64,
    /// Silence longer than this marks a peer as suspected.
    pub timeout_us: u64,
}

impl HeartbeatConfig {
    /// A tuned LAN detector: 20ms beats, 100ms timeout.
    pub fn lan() -> Self {
        HeartbeatConfig { interval_us: 20_000, timeout_us: 100_000 }
    }

    /// The OS-default-keepalive anti-pattern the paper describes: the
    /// detector only notices after ~75 seconds.
    pub fn tcp_default() -> Self {
        HeartbeatConfig { interval_us: 20_000, timeout_us: 75_000_000 }
    }
}

/// Per-peer liveness tracking. Pure state machine: the embedder feeds
/// heartbeats and clock ticks.
#[derive(Debug, Clone)]
pub struct FailureDetector {
    config: HeartbeatConfig,
    /// Last time we heard from each monitored peer.
    last_heard: HashMap<MemberId, u64>,
    suspected: HashMap<MemberId, bool>,
}

/// Liveness transitions reported by the detector.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum FdEvent {
    Suspect(MemberId),
    /// A suspected peer spoke again (false positive — §4.3.4.2's "slow
    /// connections classified as failed").
    Restore(MemberId),
}

impl FailureDetector {
    /// Monitor `peers` starting at `now`.
    pub fn new(config: HeartbeatConfig, peers: impl IntoIterator<Item = MemberId>, now: u64) -> Self {
        let mut last_heard = HashMap::new();
        let mut suspected = HashMap::new();
        for p in peers {
            last_heard.insert(p, now);
            suspected.insert(p, false);
        }
        FailureDetector { config, last_heard, suspected }
    }

    pub fn config(&self) -> HeartbeatConfig {
        self.config
    }

    /// Replace the monitored set (view change); fresh peers start unheard-
    /// from as of `now`.
    pub fn reset_peers(&mut self, peers: impl IntoIterator<Item = MemberId>, now: u64) {
        let old = std::mem::take(&mut self.last_heard);
        self.suspected.clear();
        for p in peers {
            let heard = old.get(&p).copied().unwrap_or(now).max(now.saturating_sub(self.config.timeout_us / 2));
            self.last_heard.insert(p, heard);
            self.suspected.insert(p, false);
        }
    }

    /// A message (heartbeat or any traffic) arrived from `from` at `now`.
    pub fn heard_from(&mut self, from: MemberId, now: u64) -> Option<FdEvent> {
        if let Some(t) = self.last_heard.get_mut(&from) {
            *t = (*t).max(now);
            if self.suspected.insert(from, false) == Some(true) {
                return Some(FdEvent::Restore(from));
            }
        }
        None
    }

    /// Periodic check: which peers crossed the timeout at `now`?
    pub fn tick(&mut self, now: u64) -> Vec<FdEvent> {
        // Walk peers in id order: map iteration order varies per process,
        // and the event order matters when several peers time out at once.
        let mut peers: Vec<(MemberId, u64)> =
            self.last_heard.iter().map(|(&p, &h)| (p, h)).collect();
        peers.sort_by_key(|&(p, _)| p);
        let mut events = Vec::new();
        for (peer, heard) in peers {
            let silent = now.saturating_sub(heard);
            let was = self.suspected.get(&peer).copied().unwrap_or(false);
            if silent > self.config.timeout_us && !was {
                self.suspected.insert(peer, true);
                events.push(FdEvent::Suspect(peer));
            }
        }
        events
    }

    pub fn is_suspected(&self, m: MemberId) -> bool {
        self.suspected.get(&m).copied().unwrap_or(false)
    }

    pub fn suspected_peers(&self) -> Vec<MemberId> {
        let mut v: Vec<MemberId> = self
            .suspected
            .iter()
            .filter(|(_, &s)| s)
            .map(|(&m, _)| m)
            .collect();
        v.sort();
        v
    }

    pub fn alive_peers(&self) -> Vec<MemberId> {
        let mut v: Vec<MemberId> = self
            .suspected
            .iter()
            .filter(|(_, &s)| !s)
            .map(|(&m, _)| m)
            .collect();
        v.sort();
        v
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn fd(timeout: u64) -> FailureDetector {
        FailureDetector::new(
            HeartbeatConfig { interval_us: 10, timeout_us: timeout },
            [MemberId(1), MemberId(2)],
            0,
        )
    }

    #[test]
    fn suspects_after_timeout() {
        let mut d = fd(100);
        assert!(d.tick(100).is_empty(), "exactly at timeout: not yet");
        let events = d.tick(101);
        assert_eq!(events.len(), 2);
        assert!(d.is_suspected(MemberId(1)));
        // No duplicate suspicion events.
        assert!(d.tick(200).is_empty());
    }

    #[test]
    fn simultaneous_suspicions_arrive_in_peer_order() {
        // The event order feeds view changes; it must not depend on map
        // iteration order (which varies across processes).
        let mut d = FailureDetector::new(
            HeartbeatConfig { interval_us: 10, timeout_us: 100 },
            [MemberId(5), MemberId(1), MemberId(3)],
            0,
        );
        let events = d.tick(101);
        assert_eq!(
            events,
            vec![
                FdEvent::Suspect(MemberId(1)),
                FdEvent::Suspect(MemberId(3)),
                FdEvent::Suspect(MemberId(5)),
            ]
        );
    }

    #[test]
    fn heartbeat_resets_and_restores() {
        let mut d = fd(100);
        d.heard_from(MemberId(1), 90);
        let events = d.tick(150);
        assert_eq!(events, vec![FdEvent::Suspect(MemberId(2))]);
        // The false positive case: m2 speaks again.
        assert_eq!(d.heard_from(MemberId(2), 160), Some(FdEvent::Restore(MemberId(2))));
        assert!(!d.is_suspected(MemberId(2)));
    }

    #[test]
    fn unknown_peers_ignored() {
        let mut d = fd(100);
        assert_eq!(d.heard_from(MemberId(9), 10), None);
    }

    #[test]
    fn reset_peers_on_view_change() {
        let mut d = fd(100);
        d.tick(500);
        d.reset_peers([MemberId(2), MemberId(3)], 500);
        assert!(!d.is_suspected(MemberId(2)), "suspicion cleared by reset");
        assert_eq!(d.alive_peers(), vec![MemberId(2), MemberId(3)]);
        // New peers get grace before suspicion.
        assert!(d.tick(520).is_empty());
    }
}
