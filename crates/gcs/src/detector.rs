//! Heartbeat failure detector (§4.3.4.2).
//!
//! The paper's complaint: drivers lean on TCP keepalive defaults ("30
//! seconds to 2 hours"), which makes failover hopeless, while aggressive
//! timeouts misclassify slow-but-alive nodes under load. This detector is
//! parameterized so experiment E11 can sweep exactly that tradeoff: a
//! "TCP-default" configuration is just `HeartbeatConfig::tcp_default()`.
//!
//! The *adaptive* mode ([`AdaptiveThreshold`], accrual-style after Hayashibara
//! et al.'s φ detector) replaces the fixed timeout with a per-peer threshold
//! learned from observed heartbeat inter-arrival times: a browned-out or
//! loaded peer whose heartbeats stretch raises its own threshold instead of
//! being declared dead — exactly the "slow connections classified as failed"
//! false positive §4.3.4.2 warns about. The fixed timeout remains the floor
//! (adaptive detection never fires *faster* than the configured timeout) and
//! a hard cap bounds detection time for real crashes.

use std::collections::{HashMap, VecDeque};

use crate::types::MemberId;

#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct HeartbeatConfig {
    /// How often each member emits heartbeats.
    pub interval_us: u64,
    /// Silence longer than this marks a peer as suspected.
    pub timeout_us: u64,
}

impl HeartbeatConfig {
    /// A tuned LAN detector: 20ms beats, 100ms timeout.
    pub fn lan() -> Self {
        HeartbeatConfig { interval_us: 20_000, timeout_us: 100_000 }
    }

    /// The OS-default-keepalive anti-pattern the paper describes: the
    /// detector only notices after ~75 seconds.
    pub fn tcp_default() -> Self {
        HeartbeatConfig { interval_us: 20_000, timeout_us: 75_000_000 }
    }
}

/// Knobs for the accrual-style adaptive threshold.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct AdaptiveConfig {
    /// Floor: adaptive detection never fires faster than this (use the
    /// fixed timeout you would otherwise have configured).
    pub min_timeout_us: u64,
    /// Cap: bounds detection time for real crashes no matter how noisy the
    /// observed history was.
    pub max_timeout_us: u64,
    /// Safety multiplier on the learned threshold.
    pub factor: f64,
    /// How many standard deviations above the mean gap still count as
    /// alive.
    pub k: f64,
    /// Inter-arrival history window (draws beyond it are forgotten).
    pub window: usize,
}

impl AdaptiveConfig {
    /// Adaptive companion to [`HeartbeatConfig::lan`]: same 100ms floor,
    /// 2s cap.
    pub fn lan() -> Self {
        AdaptiveConfig {
            min_timeout_us: 100_000,
            max_timeout_us: 2_000_000,
            factor: 1.5,
            k: 4.0,
            window: 32,
        }
    }
}

/// Learned suspicion threshold over one peer's heartbeat inter-arrival
/// history. Deterministic: plain windowed mean/variance, no clocks of its
/// own — the embedder feeds observed gaps.
#[derive(Debug, Clone)]
pub struct AdaptiveThreshold {
    cfg: AdaptiveConfig,
    gaps: VecDeque<u64>,
}

impl AdaptiveThreshold {
    pub fn new(cfg: AdaptiveConfig) -> Self {
        AdaptiveThreshold { cfg, gaps: VecDeque::new() }
    }

    /// Record one observed inter-arrival gap.
    pub fn observe(&mut self, gap_us: u64) {
        self.gaps.push_back(gap_us);
        while self.gaps.len() > self.cfg.window.max(1) {
            self.gaps.pop_front();
        }
    }

    /// The current suspicion threshold:
    /// `clamp(min, factor * (mean + k * std), max)`.
    ///
    /// With a short history the floor applies (behaves exactly like the
    /// fixed-timeout detector until enough gaps are seen).
    pub fn timeout_us(&self) -> u64 {
        if self.gaps.len() < 4 {
            return self.cfg.min_timeout_us;
        }
        let n = self.gaps.len() as f64;
        let mean = self.gaps.iter().map(|&g| g as f64).sum::<f64>() / n;
        let var = self.gaps.iter().map(|&g| (g as f64 - mean).powi(2)).sum::<f64>() / n;
        // Clamp in the f64 domain, *before* the u64 cast: a NaN (poisoned
        // factor/k) or negative product would otherwise ride the cast's
        // saturation semantics instead of an explicit floor, and a learned
        // timeout of 0 evicts every peer on the next tick.
        let learned = self.cfg.factor * (mean + self.cfg.k * var.sqrt());
        let floor = self.cfg.min_timeout_us as f64;
        let ceil = self.cfg.max_timeout_us as f64;
        let clamped = if learned.is_finite() { learned.clamp(floor, ceil) } else { floor };
        clamped as u64
    }
}

/// Per-peer liveness tracking. Pure state machine: the embedder feeds
/// heartbeats and clock ticks.
#[derive(Debug, Clone)]
pub struct FailureDetector {
    config: HeartbeatConfig,
    /// Last time we heard from each monitored peer.
    last_heard: HashMap<MemberId, u64>,
    suspected: HashMap<MemberId, bool>,
    /// When set, per-peer learned thresholds replace the fixed timeout.
    adaptive: Option<(AdaptiveConfig, HashMap<MemberId, AdaptiveThreshold>)>,
}

/// Liveness transitions reported by the detector.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum FdEvent {
    Suspect(MemberId),
    /// A suspected peer spoke again (false positive — §4.3.4.2's "slow
    /// connections classified as failed").
    Restore(MemberId),
}

impl FailureDetector {
    /// Monitor `peers` starting at `now`.
    pub fn new(config: HeartbeatConfig, peers: impl IntoIterator<Item = MemberId>, now: u64) -> Self {
        let mut last_heard = HashMap::new();
        let mut suspected = HashMap::new();
        for p in peers {
            last_heard.insert(p, now);
            suspected.insert(p, false);
        }
        FailureDetector { config, last_heard, suspected, adaptive: None }
    }

    /// Like [`FailureDetector::new`] but with per-peer adaptive thresholds.
    pub fn new_adaptive(
        config: HeartbeatConfig,
        adaptive: AdaptiveConfig,
        peers: impl IntoIterator<Item = MemberId>,
        now: u64,
    ) -> Self {
        let mut fd = Self::new(config, peers, now);
        let per: HashMap<MemberId, AdaptiveThreshold> = fd
            .last_heard
            .keys()
            .map(|&p| (p, AdaptiveThreshold::new(adaptive)))
            .collect();
        fd.adaptive = Some((adaptive, per));
        fd
    }

    pub fn config(&self) -> HeartbeatConfig {
        self.config
    }

    /// The threshold currently applied to `peer`.
    pub fn timeout_for(&self, peer: MemberId) -> u64 {
        match &self.adaptive {
            Some((_, per)) => per
                .get(&peer)
                .map(|t| t.timeout_us())
                .unwrap_or(self.config.timeout_us),
            None => self.config.timeout_us,
        }
    }

    /// Replace the monitored set (view change); fresh peers start unheard-
    /// from as of `now`.
    pub fn reset_peers(&mut self, peers: impl IntoIterator<Item = MemberId>, now: u64) {
        let old = std::mem::take(&mut self.last_heard);
        self.suspected.clear();
        for p in peers {
            let heard = old.get(&p).copied().unwrap_or(now).max(now.saturating_sub(self.config.timeout_us / 2));
            self.last_heard.insert(p, heard);
            self.suspected.insert(p, false);
        }
        if let Some((cfg, per)) = &mut self.adaptive {
            // Departed peers' histories are dropped; surviving peers keep
            // theirs; joiners start fresh.
            let cfg = *cfg;
            per.retain(|p, _| self.last_heard.contains_key(p));
            for &p in self.last_heard.keys() {
                per.entry(p).or_insert_with(|| AdaptiveThreshold::new(cfg));
            }
        }
    }

    /// A message (heartbeat or any traffic) arrived from `from` at `now`.
    pub fn heard_from(&mut self, from: MemberId, now: u64) -> Option<FdEvent> {
        if let Some(t) = self.last_heard.get_mut(&from) {
            let gap = now.saturating_sub(*t);
            *t = (*t).max(now);
            if let Some((_, per)) = &mut self.adaptive {
                if gap > 0 {
                    if let Some(th) = per.get_mut(&from) {
                        th.observe(gap);
                    }
                }
            }
            if self.suspected.insert(from, false) == Some(true) {
                return Some(FdEvent::Restore(from));
            }
        }
        None
    }

    /// Periodic check: which peers crossed their timeout at `now`?
    pub fn tick(&mut self, now: u64) -> Vec<FdEvent> {
        // Walk peers in id order: map iteration order varies per process,
        // and the event order matters when several peers time out at once.
        let mut peers: Vec<(MemberId, u64)> =
            self.last_heard.iter().map(|(&p, &h)| (p, h)).collect();
        peers.sort_by_key(|&(p, _)| p);
        let mut events = Vec::new();
        for (peer, heard) in peers {
            let silent = now.saturating_sub(heard);
            let was = self.suspected.get(&peer).copied().unwrap_or(false);
            if silent > self.timeout_for(peer) && !was {
                self.suspected.insert(peer, true);
                events.push(FdEvent::Suspect(peer));
            }
        }
        events
    }

    pub fn is_suspected(&self, m: MemberId) -> bool {
        self.suspected.get(&m).copied().unwrap_or(false)
    }

    pub fn suspected_peers(&self) -> Vec<MemberId> {
        let mut v: Vec<MemberId> = self
            .suspected
            .iter()
            .filter(|(_, &s)| s)
            .map(|(&m, _)| m)
            .collect();
        v.sort();
        v
    }

    pub fn alive_peers(&self) -> Vec<MemberId> {
        let mut v: Vec<MemberId> = self
            .suspected
            .iter()
            .filter(|(_, &s)| !s)
            .map(|(&m, _)| m)
            .collect();
        v.sort();
        v
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn fd(timeout: u64) -> FailureDetector {
        FailureDetector::new(
            HeartbeatConfig { interval_us: 10, timeout_us: timeout },
            [MemberId(1), MemberId(2)],
            0,
        )
    }

    #[test]
    fn suspects_after_timeout() {
        let mut d = fd(100);
        assert!(d.tick(100).is_empty(), "exactly at timeout: not yet");
        let events = d.tick(101);
        assert_eq!(events.len(), 2);
        assert!(d.is_suspected(MemberId(1)));
        // No duplicate suspicion events.
        assert!(d.tick(200).is_empty());
    }

    #[test]
    fn simultaneous_suspicions_arrive_in_peer_order() {
        // The event order feeds view changes; it must not depend on map
        // iteration order (which varies across processes).
        let mut d = FailureDetector::new(
            HeartbeatConfig { interval_us: 10, timeout_us: 100 },
            [MemberId(5), MemberId(1), MemberId(3)],
            0,
        );
        let events = d.tick(101);
        assert_eq!(
            events,
            vec![
                FdEvent::Suspect(MemberId(1)),
                FdEvent::Suspect(MemberId(3)),
                FdEvent::Suspect(MemberId(5)),
            ]
        );
    }

    #[test]
    fn heartbeat_resets_and_restores() {
        let mut d = fd(100);
        d.heard_from(MemberId(1), 90);
        let events = d.tick(150);
        assert_eq!(events, vec![FdEvent::Suspect(MemberId(2))]);
        // The false positive case: m2 speaks again.
        assert_eq!(d.heard_from(MemberId(2), 160), Some(FdEvent::Restore(MemberId(2))));
        assert!(!d.is_suspected(MemberId(2)));
    }

    #[test]
    fn unknown_peers_ignored() {
        let mut d = fd(100);
        assert_eq!(d.heard_from(MemberId(9), 10), None);
    }

    #[test]
    fn adaptive_threshold_learns_and_clamps() {
        let cfg = AdaptiveConfig {
            min_timeout_us: 100,
            max_timeout_us: 10_000,
            factor: 1.5,
            k: 4.0,
            window: 8,
        };
        let mut t = AdaptiveThreshold::new(cfg);
        assert_eq!(t.timeout_us(), 100, "floor before history");
        for _ in 0..8 {
            t.observe(20);
        }
        assert_eq!(t.timeout_us(), 100, "regular fast beats: floor applies");
        // Gaps stretch 20x (brownout): the threshold follows them up.
        for _ in 0..8 {
            t.observe(400);
        }
        let th = t.timeout_us();
        assert!(th >= 600, "learned threshold {th}");
        assert!(th <= 10_000, "cap respected");
        // Absurd history still clamps at the cap.
        for _ in 0..8 {
            t.observe(1_000_000);
        }
        assert_eq!(t.timeout_us(), 10_000);
    }

    #[test]
    fn adaptive_threshold_short_history_and_nan_hold_the_floor() {
        let cfg = AdaptiveConfig {
            min_timeout_us: 100,
            max_timeout_us: 10_000,
            factor: 1.5,
            k: 4.0,
            window: 8,
        };
        // Zero and one samples: the learned path must not run at all (a
        // single gap has zero variance and would anchor the threshold to
        // one possibly-tiny observation).
        let mut t = AdaptiveThreshold::new(cfg);
        assert_eq!(t.timeout_us(), 100, "no samples: floor");
        t.observe(3);
        assert_eq!(t.timeout_us(), 100, "single sample: floor");

        // NaN-poisoned config (factor * anything = NaN): the threshold
        // must clamp to the configured floor in the f64 domain, never
        // collapse toward 0 and evict every peer.
        let mut t = AdaptiveThreshold::new(AdaptiveConfig { factor: f64::NAN, ..cfg });
        for _ in 0..8 {
            t.observe(20);
        }
        assert_eq!(t.timeout_us(), 100, "NaN learned value: floor");

        // Same for an infinity (overflowed k): any non-finite learned
        // value falls back to the floor rather than trusting saturation.
        let mut t = AdaptiveThreshold::new(AdaptiveConfig { k: f64::INFINITY, ..cfg });
        for g in [10, 20, 30, 40] {
            t.observe(g);
        }
        assert_eq!(t.timeout_us(), 100, "non-finite learned value: floor");

        // Negative factor (misconfiguration) floors instead of casting a
        // negative f64 to 0.
        let mut t = AdaptiveThreshold::new(AdaptiveConfig { factor: -2.0, ..cfg });
        for _ in 0..8 {
            t.observe(500);
        }
        assert_eq!(t.timeout_us(), 100, "negative learned value: floor");
    }

    #[test]
    fn adaptive_detector_tolerates_stretched_beats_but_catches_silence() {
        let hb = HeartbeatConfig { interval_us: 10, timeout_us: 100 };
        let ad = AdaptiveConfig {
            min_timeout_us: 100,
            max_timeout_us: 5_000,
            factor: 1.5,
            k: 4.0,
            window: 8,
        };
        // A brownout stretches heartbeat gaps progressively (backlog builds
        // up): 20µs beats ramp 15%/beat to 400µs. The fixed 100µs timeout
        // false-positives as soon as a gap crosses it; the adaptive
        // threshold tracks the ramp.
        let mut fixed = FailureDetector::new(hb, [MemberId(1)], 0);
        let mut adaptive = FailureDetector::new_adaptive(hb, ad, [MemberId(1)], 0);
        let mut fixed_suspects = 0;
        let mut adaptive_suspects = 0;
        let mut gap = 20.0f64;
        let mut now = 0u64;
        for _ in 0..40 {
            now += gap as u64;
            gap = (gap * 1.15).min(400.0);
            fixed_suspects += fixed.tick(now).len();
            adaptive_suspects += adaptive.tick(now).len();
            fixed.heard_from(MemberId(1), now);
            adaptive.heard_from(MemberId(1), now);
        }
        assert!(fixed_suspects > 0, "fixed timeout false-positives on stretched beats");
        assert_eq!(adaptive_suspects, 0, "adaptive threshold absorbs the stretch");
        // True silence still gets caught, bounded by the cap.
        let events = adaptive.tick(now + 6_000);
        assert_eq!(events, vec![FdEvent::Suspect(MemberId(1))]);
    }

    #[test]
    fn reset_peers_on_view_change() {
        let mut d = fd(100);
        d.tick(500);
        d.reset_peers([MemberId(2), MemberId(3)], 500);
        assert!(!d.is_suspected(MemberId(2)), "suspicion cleared by reset");
        assert_eq!(d.alive_peers(), vec![MemberId(2), MemberId(3)]);
        // New peers get grace before suspicion.
        assert!(d.tick(520).is_empty());
    }
}
