//! The open-loop driver against a real cluster: it sustains its configured
//! arrival rate independent of completions, accounts for every arrival
//! (ok / error / shed — nothing silently absorbed), sheds visibly under
//! overload instead of buffering without bound, never loses an
//! acknowledged write, and is bit-deterministic per seed.

use replimid_core::{Cluster, ClusterConfig, Mode, NondetPolicy};
use replimid_sql::{Outcome, ADMIN_PASSWORD, ADMIN_USER};
use replimid_workload::micro;
use replimid_workload::openloop::{
    add_open_loop, open_loop_metrics, ArrivalProcess, OpenLoopConfig, OpenLoopMetrics,
};
use replimid_simnet::dur;

fn mm_cluster(backends: usize) -> Cluster {
    let mut cfg = ClusterConfig::new(
        Mode::MultiMasterStatement { nondet: NondetPolicy::RewriteAndReject },
        micro::schema("bench", 100),
        "bench",
    );
    cfg.backends_per_mw = backends;
    Cluster::build(cfg)
}

fn run_driver(seed: u64, cfg_tweak: impl FnOnce(&mut OpenLoopConfig)) -> OpenLoopMetrics {
    let mut cluster = mm_cluster(3);
    let mut olc = OpenLoopConfig::new(ArrivalProcess::Poisson { rate_per_sec: 300.0 });
    olc.seed = seed;
    olc.stop_at_us = 8_000_000;
    cfg_tweak(&mut olc);
    let driver = add_open_loop(&mut cluster, 0, olc);
    // Run past stop_at so the queued/in-flight tail fully drains.
    cluster.run_for(dur::secs(10));
    open_loop_metrics(&mut cluster, driver)
}

#[test]
fn sustains_rate_and_accounts_for_every_arrival() {
    let m = run_driver(21, |_| {});
    // ~300/s for 8s of arrivals; Poisson noise stays well inside ±15%.
    let expected = 300.0 * 8.0;
    assert!(
        (m.arrivals as f64 - expected).abs() < expected * 0.15,
        "arrival clock off: {} arrivals, expected ~{expected}",
        m.arrivals
    );
    assert_eq!(m.shed, 0, "capacity is ample; nothing should shed");
    // Every arrival reaches exactly one terminal outcome.
    assert_eq!(
        m.completed_ok + m.completed_err + m.shed,
        m.arrivals,
        "arrivals leaked: ok {} err {} shed {} vs arrivals {}",
        m.completed_ok,
        m.completed_err,
        m.shed,
        m.arrivals
    );
    assert!(m.completed_ok as f64 > m.arrivals as f64 * 0.95, "mostly failing");
    assert_eq!(m.sojourn.count(), m.completed_ok + m.completed_err);
    assert!(m.queue_wait.count() >= m.dispatched - m.retries_enqueued);
    // Queue-wait spans also land in the driver's trace sink.
    assert!(
        m.trace.stage_histogram(replimid_core::trace::Stage::QueueWait).count() > 0,
        "queue-wait stage not traced"
    );
}

#[test]
fn overload_sheds_instead_of_buffering_unboundedly() {
    let m = run_driver(22, |olc| {
        olc.arrivals = ArrivalProcess::Poisson { rate_per_sec: 4_000.0 };
        olc.max_inflight = 4;
        olc.queue_max = 8;
        olc.stop_at_us = 4_000_000;
    });
    assert!(m.shed > 0, "an overloaded open loop must shed visibly");
    assert!(m.queue_peak <= 8, "queue bound violated: peak {}", m.queue_peak);
    assert_eq!(m.completed_ok + m.completed_err + m.shed, m.arrivals);
    // The shed series localizes overload in time.
    assert!(m.per_sec_shed.iter().sum::<u64>() == m.shed);
}

#[test]
fn diurnal_envelope_shows_up_in_arrival_series() {
    let m = run_driver(23, |olc| {
        olc.arrivals = ArrivalProcess::Diurnal {
            base_per_sec: 50.0,
            peak_per_sec: 600.0,
            period_us: 8_000_000,
        };
    });
    // Period 8s starting at the trough: seconds 3–4 straddle the peak.
    let trough = m.per_sec_arrivals.first().copied().unwrap_or(0);
    let peak = m.per_sec_arrivals.get(4).copied().unwrap_or(0);
    assert!(
        peak > trough.max(1) * 3,
        "diurnal swing not visible: trough-second {trough}, peak-second {peak}"
    );
    assert_eq!(m.completed_ok + m.completed_err + m.shed, m.arrivals);
}

#[test]
fn same_seed_is_bit_identical() {
    let a = run_driver(31, |_| {});
    let b = run_driver(31, |_| {});
    assert_eq!(a.arrivals, b.arrivals);
    assert_eq!(a.shed, b.shed);
    assert_eq!(a.dispatched, b.dispatched);
    assert_eq!(a.completed_ok, b.completed_ok);
    assert_eq!(a.completed_err, b.completed_err);
    assert_eq!(a.retries_enqueued, b.retries_enqueued);
    assert_eq!(a.per_sec_completed, b.per_sec_completed);
    assert_eq!(a.per_sec_arrivals, b.per_sec_arrivals);
    assert_eq!(a.sojourn.quantile_us(0.99), b.sojourn.quantile_us(0.99));
    assert_eq!(a.acked_insert_keys, b.acked_insert_keys);
    // And a different seed actually changes the stream.
    let c = run_driver(32, |_| {});
    assert_ne!(a.per_sec_arrivals, c.per_sec_arrivals);
}

#[test]
fn every_acked_write_is_present_on_every_replica() {
    let mut cluster = mm_cluster(3);
    let mut olc = OpenLoopConfig::new(ArrivalProcess::Poisson { rate_per_sec: 250.0 });
    olc.seed = 41;
    olc.write_permille = 400;
    olc.stop_at_us = 6_000_000;
    let driver = add_open_loop(&mut cluster, 0, olc);
    cluster.run_for(dur::secs(8));
    let m = open_loop_metrics(&mut cluster, driver);
    assert!(!m.acked_insert_keys.is_empty(), "no writes acknowledged");

    for b in 0..3 {
        let present: std::collections::BTreeSet<i64> = cluster.with_backend_engine(0, b, |e| {
            let c = e.connect(ADMIN_USER, ADMIN_PASSWORD).expect("admin login");
            e.execute(c, "USE bench").unwrap();
            let out = e
                .execute(c, "SELECT k FROM bench WHERE k >= 1000000")
                .unwrap()
                .outcome;
            e.disconnect(c);
            match out {
                Outcome::Rows(rs) => rs.rows.iter().map(|r| r[0].as_int().unwrap()).collect(),
                other => panic!("expected rows, got {other:?}"),
            }
        });
        for k in &m.acked_insert_keys {
            assert!(
                present.contains(k),
                "backend {b} lost acknowledged write {k} (acked ⊆ present violated)"
            );
        }
    }
}
