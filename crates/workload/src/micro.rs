//! Microbenchmarks: keyed updates with controllable contention, point
//! reads, and a parameterized read/write mix.

use replimid_det::DetRng;
use replimid_core::TxSource;

/// Schema for the microbenchmark table: `bench(k INT PRIMARY KEY, v INT)`
/// preloaded with `rows` rows.
pub fn schema(db: &str, rows: usize) -> Vec<String> {
    let mut out = vec![
        format!("CREATE DATABASE {db}"),
        format!("USE {db}"),
        "CREATE TABLE bench (k INT PRIMARY KEY, v INT NOT NULL)".to_string(),
    ];
    // Batch the preload in chunks to keep statements readable.
    for chunk in (0..rows).collect::<Vec<_>>().chunks(100) {
        let values: Vec<String> = chunk.iter().map(|k| format!("({k}, 0)")).collect();
        out.push(format!("INSERT INTO bench VALUES {}", values.join(", ")));
    }
    out
}

/// Schema for a fleet keyspace sharded over `bench_<t>` tables of at most
/// `keys_per_table` rows each (`sessions` keys total; the last table may be
/// short). The engine's cost model charges a scan per point query, so one
/// huge table would make every read cost O(fleet size); fixed-size shards
/// keep per-read cost constant as the fleet grows — the same disjoint-table
/// trick the group-commit experiment (E18) uses on the write path.
pub fn sharded_schema(db: &str, sessions: usize, keys_per_table: usize) -> Vec<String> {
    let kpt = keys_per_table.max(1);
    let mut out = vec![format!("CREATE DATABASE {db}"), format!("USE {db}")];
    let tables = sessions.div_ceil(kpt).max(1);
    for t in 0..tables {
        out.push(format!("CREATE TABLE bench_{t} (k INT PRIMARY KEY, v INT NOT NULL)"));
        let rows = (sessions - t * kpt).min(kpt);
        for chunk in (0..rows).collect::<Vec<_>>().chunks(100) {
            let values: Vec<String> = chunk.iter().map(|k| format!("({k}, 0)")).collect();
            out.push(format!("INSERT INTO bench_{t} VALUES {}", values.join(", ")));
        }
    }
    out
}

/// Schema for the partial-replication experiments: `groups` disjoint
/// tables `t0..t{groups-1}` (one per table group), each preloaded with
/// `rows` rows. With a placement assigning `t{g}` to group `g`, clients
/// pinned to one table generate traffic that never leaves that group's
/// host set.
pub fn disjoint_schema(db: &str, groups: usize, rows: usize) -> Vec<String> {
    let mut out = vec![format!("CREATE DATABASE {db}"), format!("USE {db}")];
    for g in 0..groups {
        out.push(format!("CREATE TABLE t{g} (k INT PRIMARY KEY, v INT)"));
        for chunk in (0..rows).collect::<Vec<_>>().chunks(100) {
            let values: Vec<String> = chunk.iter().map(|k| format!("({k}, 0)")).collect();
            out.push(format!("INSERT INTO t{g} VALUES {}", values.join(", ")));
        }
    }
    out
}

/// Fresh-key inserts pinned to one table group, with an optional fraction
/// of *paired-group* transactions that write the group's partner table
/// too (groups 2k and 2k+1 are partners): `BEGIN; INSERT t_{2k};
/// INSERT t_{2k+1}; COMMIT`. The single-group stream is the disjoint
/// write workload partial replication scales on; the paired stream is the
/// cross-group tax knob (every paired transaction needs a 2PC-style
/// commit across both groups' sequencers).
pub struct DisjointInsert {
    next: i64,
    pub group: usize,
    /// Fraction of transactions that touch the partner group as well.
    pub multi_fraction: f64,
}

impl DisjointInsert {
    pub fn new(base: i64, group: usize) -> Self {
        DisjointInsert { next: base, group, multi_fraction: 0.0 }
    }

    pub fn with_multi(mut self, fraction: f64) -> Self {
        self.multi_fraction = fraction;
        self
    }
}

impl TxSource for DisjointInsert {
    fn next_tx(&mut self, rng: &mut DetRng) -> Vec<String> {
        let k = self.next;
        self.next += 1;
        if self.multi_fraction > 0.0 && rng.gen::<f64>() < self.multi_fraction {
            let a = self.group & !1;
            let b = a + 1;
            vec![
                "BEGIN ISOLATION LEVEL SNAPSHOT".to_string(),
                format!("INSERT INTO t{a} VALUES ({k}, 1)"),
                format!("INSERT INTO t{b} VALUES ({k}, 1)"),
                "COMMIT".to_string(),
            ]
        } else {
            vec![format!("INSERT INTO t{} VALUES ({k}, 1)", self.group)]
        }
    }
}

/// Transactions updating `writes_per_tx` keys drawn from a hot set of
/// `hot_keys` out of `total_keys`: the smaller the hot set, the higher the
/// conflict rate — the knob for the consistency-spectrum experiment (E10).
pub struct KeyedUpdates {
    pub total_keys: i64,
    pub hot_keys: i64,
    /// Fraction of key draws taken from the hot set.
    pub hot_fraction: f64,
    pub writes_per_tx: usize,
    /// Wrap updates in BEGIN ISOLATION LEVEL <this> ... COMMIT when set.
    pub isolation: Option<&'static str>,
}

impl KeyedUpdates {
    pub fn uniform(total_keys: i64) -> Self {
        KeyedUpdates {
            total_keys,
            hot_keys: total_keys,
            hot_fraction: 0.0,
            writes_per_tx: 1,
            isolation: None,
        }
    }

    pub fn contended(total_keys: i64, hot_keys: i64, hot_fraction: f64) -> Self {
        KeyedUpdates { total_keys, hot_keys, hot_fraction, writes_per_tx: 2, isolation: Some("SNAPSHOT") }
    }

    fn draw_key(&self, rng: &mut DetRng) -> i64 {
        if self.hot_keys < self.total_keys && rng.gen::<f64>() < self.hot_fraction {
            rng.gen_range(0..self.hot_keys)
        } else {
            rng.gen_range(0..self.total_keys)
        }
    }
}

impl TxSource for KeyedUpdates {
    fn next_tx(&mut self, rng: &mut DetRng) -> Vec<String> {
        let mut stmts = Vec::new();
        if let Some(level) = self.isolation {
            stmts.push(format!("BEGIN ISOLATION LEVEL {level}"));
        }
        for _ in 0..self.writes_per_tx.max(1) {
            let k = self.draw_key(rng);
            stmts.push(format!("UPDATE bench SET v = v + 1 WHERE k = {k}"));
        }
        if self.isolation.is_some() {
            stmts.push("COMMIT".to_string());
        }
        stmts
    }
}

/// Read-only point queries over the bench table.
pub struct PointReads {
    pub total_keys: i64,
}

impl TxSource for PointReads {
    fn next_tx(&mut self, rng: &mut DetRng) -> Vec<String> {
        let k = rng.gen_range(0..self.total_keys);
        vec![format!("SELECT v FROM bench WHERE k = {k}")]
    }
}

/// A parameterized read/write mix: each transaction is a write with
/// probability `write_fraction`, else a point read. The scalability
/// experiments sweep `write_fraction` (E5).
pub struct ReadWriteMix {
    pub total_keys: i64,
    pub write_fraction: f64,
}

impl TxSource for ReadWriteMix {
    fn next_tx(&mut self, rng: &mut DetRng) -> Vec<String> {
        let k = rng.gen_range(0..self.total_keys);
        if rng.gen::<f64>() < self.write_fraction {
            vec![format!("UPDATE bench SET v = v + 1 WHERE k = {k}")]
        } else {
            vec![format!("SELECT v FROM bench WHERE k = {k}")]
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn schema_preloads_rows() {
        let s = schema("d", 250);
        assert!(s.iter().filter(|x| x.starts_with("INSERT")).count() == 3);
        assert!(s[2].contains("PRIMARY KEY"));
    }

    #[test]
    fn sharded_schema_splits_tables() {
        let s = sharded_schema("d", 2_500, 1_000);
        let creates: Vec<&String> =
            s.iter().filter(|x| x.starts_with("CREATE TABLE")).collect();
        assert_eq!(creates.len(), 3);
        assert!(creates[2].contains("bench_2"));
        // The short last shard holds the 500 leftover keys.
        let last_inserts =
            s.iter().filter(|x| x.starts_with("INSERT INTO bench_2")).count();
        assert_eq!(last_inserts, 5);
    }

    #[test]
    fn disjoint_insert_pairs_partner_groups() {
        let s = disjoint_schema("d", 4, 0);
        assert_eq!(s.iter().filter(|x| x.starts_with("CREATE TABLE")).count(), 4);
        let mut w = DisjointInsert::new(0, 3).with_multi(1.0);
        let mut rng = DetRng::seed_from_u64(3);
        let tx = w.next_tx(&mut rng);
        assert_eq!(tx.len(), 4);
        assert!(tx[1].contains("INTO t2") && tx[2].contains("INTO t3"), "{tx:?}");
        let mut single = DisjointInsert::new(5, 1);
        assert_eq!(single.next_tx(&mut rng), vec!["INSERT INTO t1 VALUES (5, 1)"]);
    }

    #[test]
    fn contended_updates_stay_in_key_space() {
        let mut w = KeyedUpdates::contended(1000, 10, 0.8);
        let mut rng = DetRng::seed_from_u64(1);
        for _ in 0..50 {
            let tx = w.next_tx(&mut rng);
            assert_eq!(tx.len(), 4); // BEGIN, 2 updates, COMMIT
            assert!(tx[0].contains("SNAPSHOT"));
        }
    }

    #[test]
    fn mix_respects_fraction_roughly() {
        let mut w = ReadWriteMix { total_keys: 100, write_fraction: 0.3 };
        let mut rng = DetRng::seed_from_u64(2);
        let writes = (0..1000)
            .filter(|_| w.next_tx(&mut rng)[0].starts_with("UPDATE"))
            .count();
        assert!((250..350).contains(&writes), "writes {writes}");
    }
}
