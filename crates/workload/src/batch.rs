//! The §4.4.5 worst case: "a sequential batch update script will usually
//! run much slower on a replicated database than on a single-instance
//! database." One client, zero think time, strictly serial sub-millisecond
//! updates — pure latency exposure.

use replimid_det::DetRng;
use replimid_core::TxSource;

/// Updates keys 0..n strictly in order, one statement per transaction, then
/// stops (pair with `tx_limit = n`).
pub struct BatchUpdate {
    pub keys: i64,
    cursor: i64,
}

impl BatchUpdate {
    pub fn new(keys: i64) -> Self {
        BatchUpdate { keys, cursor: 0 }
    }
}

impl TxSource for BatchUpdate {
    fn next_tx(&mut self, _rng: &mut DetRng) -> Vec<String> {
        let k = self.cursor % self.keys.max(1);
        self.cursor += 1;
        vec![format!("UPDATE bench SET v = v + 1 WHERE k = {k}")]
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn strictly_sequential() {
        let mut b = BatchUpdate::new(3);
        let mut rng = DetRng::seed_from_u64(0);
        let keys: Vec<String> = (0..4).map(|_| b.next_tx(&mut rng)[0].clone()).collect();
        assert!(keys[0].ends_with("k = 0"));
        assert!(keys[1].ends_with("k = 1"));
        assert!(keys[2].ends_with("k = 2"));
        assert!(keys[3].ends_with("k = 0"));
    }
}
