//! # replimid-workload
//!
//! Seeded workload generators and fault schedules for the replication
//! experiments. Each generator implements `replimid_core::TxSource` and
//! comes with a schema builder, so a cluster plus workload is two calls.
//!
//! Workloads, mapped to the paper:
//!
//! * [`broker`] — the Fortune-500 travel-broker mix from the introduction:
//!   95% reads / 5% writes, but at volumes where the 5% dominates.
//! * [`bookstore`] — a TPC-W-flavoured e-commerce mix (browse/buy).
//! * [`auction`] — a RUBiS-flavoured auction mix (browse/bid) with tunable
//!   conflict (bids contend on hot items).
//! * [`micro`] — microbenchmarks: keyed updates with a controllable conflict
//!   rate (for the consistency-spectrum experiment) and read-only point
//!   queries.
//! * [`batch`] — the sequential batch-update job of §4.4.5 (latency-bound,
//!   no parallelism: the case replicated databases serve worst).
//! * [`faults`] — Poisson fault schedules at the paper's observed rate of
//!   one fatal failure per day per 200 processors (§2.2).
//! * [`openloop`] — an open-loop heavy-traffic driver (Poisson/diurnal
//!   arrivals, bounded admission, explicit shed counter) for the
//!   elasticity experiments: arrivals do not wait for completions, so
//!   overload during a management operation is observable.

pub mod auction;
pub mod batch;
pub mod bookstore;
pub mod broker;
pub mod faults;
pub mod micro;
pub mod openloop;

pub use auction::Auction;
pub use batch::BatchUpdate;
pub use bookstore::Bookstore;
pub use broker::Broker;
pub use faults::{FaultSchedule, GrayFault, GrayFaultSchedule, GrayKind, GraySpec};
pub use micro::{KeyedUpdates, PointReads, ReadWriteMix};
pub use openloop::{
    add_open_loop, end_open_loop_sessions, open_loop_metrics, ArrivalProcess, OpenLoopConfig,
    OpenLoopDriver, OpenLoopMetrics,
};
