//! The paper's introductory case study: a travel-ticket brokering system at
//! a Fortune-500 customer — "95% of transactions were read-only. Still, the
//! 5% write workload resulted in thousands of update requests per second."
//!
//! Agents search availability (reads over flights/hotels) and occasionally
//! book (a read-check then an update + insert transaction).

use replimid_det::DetRng;
use replimid_core::TxSource;

/// Inventory schema: flights with seat counts, bookings ledger.
pub fn schema(db: &str, flights: usize) -> Vec<String> {
    let mut out = vec![
        format!("CREATE DATABASE {db}"),
        format!("USE {db}"),
        "CREATE TABLE flights (id INT PRIMARY KEY, route TEXT, seats INT NOT NULL, price INT NOT NULL)"
            .to_string(),
        "CREATE TABLE bookings (id INT PRIMARY KEY, flight_id INT NOT NULL, agent INT NOT NULL, at TIMESTAMP)"
            .to_string(),
        "CREATE SEQUENCE booking_ids START 1".to_string(),
    ];
    for chunk in (0..flights).collect::<Vec<_>>().chunks(50) {
        let values: Vec<String> = chunk
            .iter()
            .map(|f| format!("({f}, 'r{}', 200, {})", f % 37, 50 + (f % 400)))
            .collect();
        out.push(format!("INSERT INTO flights VALUES {}", values.join(", ")));
    }
    out
}

/// One travel agent: searches (reads) with probability `1 - write_fraction`,
/// books otherwise. Bookings allocate ids from a shared counter per agent
/// (disjoint ranges: real agencies do not collide on booking numbers).
pub struct Broker {
    pub flights: i64,
    /// Paper default: 0.05.
    pub write_fraction: f64,
    next_booking: i64,
}

impl Broker {
    /// `agent` selects a disjoint booking-id range.
    pub fn new(flights: i64, write_fraction: f64, agent: u64) -> Self {
        Broker {
            flights,
            write_fraction,
            next_booking: (agent as i64) * 10_000_000,
        }
    }
}

impl TxSource for Broker {
    fn next_tx(&mut self, rng: &mut DetRng) -> Vec<String> {
        let flight = rng.gen_range(0..self.flights);
        if rng.gen::<f64>() < self.write_fraction {
            // A booking: check availability, take a seat, record the sale.
            let booking = self.next_booking;
            self.next_booking += 1;
            let agent = booking / 10_000_000;
            vec![
                "BEGIN ISOLATION LEVEL SNAPSHOT".to_string(),
                format!("SELECT seats FROM flights WHERE id = {flight}"),
                format!("UPDATE flights SET seats = seats - 1 WHERE id = {flight} AND seats > 0"),
                format!(
                    "INSERT INTO bookings (id, flight_id, agent, at) VALUES ({booking}, {flight}, {agent}, now())"
                ),
                "COMMIT".to_string(),
            ]
        } else {
            // A search: availability across a route bucket + price check.
            let route = flight % 37;
            vec![format!(
                "SELECT id, seats, price FROM flights WHERE route = 'r{route}' AND seats > 0 ORDER BY price LIMIT 5"
            )]
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn mix_is_mostly_reads() {
        let mut b = Broker::new(100, 0.05, 1);
        let mut rng = DetRng::seed_from_u64(3);
        let writes = (0..1000).filter(|_| b.next_tx(&mut rng).len() > 1).count();
        assert!((20..90).contains(&writes), "writes {writes}");
    }

    #[test]
    fn booking_ids_are_disjoint_across_agents() {
        let mut a = Broker::new(10, 1.0, 1);
        let mut b = Broker::new(10, 1.0, 2);
        let mut rng = DetRng::seed_from_u64(4);
        let ta = a.next_tx(&mut rng);
        let tb = b.next_tx(&mut rng);
        assert!(ta[3].contains("(10000000,"));
        assert!(tb[3].contains("(20000000,"));
    }

    #[test]
    fn schema_builds() {
        let s = schema("broker", 120);
        assert!(s.iter().any(|x| x.contains("CREATE SEQUENCE")));
        assert_eq!(s.iter().filter(|x| x.starts_with("INSERT")).count(), 3);
    }
}
