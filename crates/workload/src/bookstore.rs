//! A TPC-W-flavoured bookstore mix: catalog browsing, cart updates, and
//! order placement. Research prototypes evaluated on TPC-W are the paper's
//! §3.4 norm; this generator reproduces the shape (browse-heavy, orders
//! write several tables in one transaction).

use replimid_det::DetRng;
use replimid_core::TxSource;

pub fn schema(db: &str, books: usize, customers: usize) -> Vec<String> {
    let mut out = vec![
        format!("CREATE DATABASE {db}"),
        format!("USE {db}"),
        "CREATE TABLE books (id INT PRIMARY KEY, title TEXT, stock INT NOT NULL, price INT NOT NULL)"
            .to_string(),
        "CREATE TABLE customers (id INT PRIMARY KEY, name TEXT, orders INT NOT NULL)".to_string(),
        "CREATE TABLE orders (id INT PRIMARY KEY, customer_id INT NOT NULL, book_id INT NOT NULL, qty INT NOT NULL, at TIMESTAMP)"
            .to_string(),
    ];
    for chunk in (0..books).collect::<Vec<_>>().chunks(50) {
        let values: Vec<String> = chunk
            .iter()
            .map(|b| format!("({b}, 'book-{b}', 1000, {})", 5 + b % 95))
            .collect();
        out.push(format!("INSERT INTO books VALUES {}", values.join(", ")));
    }
    for chunk in (0..customers).collect::<Vec<_>>().chunks(50) {
        let values: Vec<String> =
            chunk.iter().map(|c| format!("({c}, 'cust-{c}', 0)")).collect();
        out.push(format!("INSERT INTO customers VALUES {}", values.join(", ")));
    }
    out
}

/// TPC-W-ish interaction weights.
#[derive(Debug, Clone, Copy)]
pub struct BookstoreMix {
    /// Probability of an order (the write transaction); the rest browse.
    pub buy_fraction: f64,
}

pub struct Bookstore {
    pub books: i64,
    pub customers: i64,
    pub mix: BookstoreMix,
    next_order: i64,
}

impl Bookstore {
    pub fn new(books: i64, customers: i64, buy_fraction: f64, shopper: u64) -> Self {
        Bookstore {
            books,
            customers,
            mix: BookstoreMix { buy_fraction },
            next_order: (shopper as i64) * 10_000_000,
        }
    }
}

impl TxSource for Bookstore {
    fn next_tx(&mut self, rng: &mut DetRng) -> Vec<String> {
        let book = rng.gen_range(0..self.books);
        if rng.gen::<f64>() < self.mix.buy_fraction {
            let customer = rng.gen_range(0..self.customers);
            let order = self.next_order;
            self.next_order += 1;
            let qty = rng.gen_range(1..4);
            vec![
                "BEGIN ISOLATION LEVEL SNAPSHOT".to_string(),
                format!("SELECT stock, price FROM books WHERE id = {book}"),
                format!("UPDATE books SET stock = stock - {qty} WHERE id = {book}"),
                format!(
                    "INSERT INTO orders (id, customer_id, book_id, qty, at) VALUES ({order}, {customer}, {book}, {qty}, now())"
                ),
                format!("UPDATE customers SET orders = orders + 1 WHERE id = {customer}"),
                "COMMIT".to_string(),
            ]
        } else {
            match rng.gen_range(0..3) {
                0 => vec![format!("SELECT title, price FROM books WHERE id = {book}")],
                1 => vec![format!(
                    "SELECT id, title FROM books WHERE price <= {} ORDER BY price LIMIT 10",
                    10 + book % 90
                )],
                _ => vec![format!(
                    "SELECT COUNT(*) FROM orders WHERE book_id = {book}"
                )],
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn orders_touch_three_tables() {
        let mut b = Bookstore::new(100, 50, 1.0, 3);
        let mut rng = DetRng::seed_from_u64(5);
        let tx = b.next_tx(&mut rng);
        assert_eq!(tx.len(), 6);
        assert!(tx[2].starts_with("UPDATE books"));
        assert!(tx[3].starts_with("INSERT INTO orders"));
        assert!(tx[4].starts_with("UPDATE customers"));
    }

    #[test]
    fn browse_is_read_only() {
        let mut b = Bookstore::new(100, 50, 0.0, 3);
        let mut rng = DetRng::seed_from_u64(6);
        for _ in 0..20 {
            let tx = b.next_tx(&mut rng);
            assert_eq!(tx.len(), 1);
            assert!(tx[0].starts_with("SELECT"));
        }
    }
}
