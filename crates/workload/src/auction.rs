//! A RUBiS-flavoured auction mix (the paper's other §3.4 staple): browsing
//! item listings and bidding. Bids contend on *hot items* — the natural
//! conflict generator for certification-abort experiments.

use replimid_det::DetRng;
use replimid_core::TxSource;

pub fn schema(db: &str, items: usize) -> Vec<String> {
    let mut out = vec![
        format!("CREATE DATABASE {db}"),
        format!("USE {db}"),
        "CREATE TABLE auctions (id INT PRIMARY KEY, seller INT NOT NULL, high_bid INT NOT NULL, bids INT NOT NULL)"
            .to_string(),
        "CREATE TABLE bids (id INT PRIMARY KEY, auction_id INT NOT NULL, bidder INT NOT NULL, amount INT NOT NULL)"
            .to_string(),
    ];
    for chunk in (0..items).collect::<Vec<_>>().chunks(50) {
        let values: Vec<String> = chunk
            .iter()
            .map(|i| format!("({i}, {}, 10, 0)", i % 17))
            .collect();
        out.push(format!("INSERT INTO auctions VALUES {}", values.join(", ")));
    }
    out
}

pub struct Auction {
    pub items: i64,
    /// Fraction of bids aimed at the hottest `hot_items`.
    pub hot_items: i64,
    pub hot_fraction: f64,
    /// Probability a transaction is a bid (write); the rest browse.
    pub bid_fraction: f64,
    bidder: i64,
    next_bid: i64,
}

impl Auction {
    pub fn new(items: i64, bid_fraction: f64, bidder: u64) -> Self {
        Auction {
            items,
            hot_items: (items / 20).max(1),
            hot_fraction: 0.5,
            bid_fraction,
            bidder: bidder as i64,
            next_bid: (bidder as i64) * 10_000_000,
        }
    }
}

impl TxSource for Auction {
    fn next_tx(&mut self, rng: &mut DetRng) -> Vec<String> {
        let item = if rng.gen::<f64>() < self.hot_fraction {
            rng.gen_range(0..self.hot_items)
        } else {
            rng.gen_range(0..self.items)
        };
        if rng.gen::<f64>() < self.bid_fraction {
            let bid_id = self.next_bid;
            self.next_bid += 1;
            let amount = rng.gen_range(11..10_000);
            vec![
                "BEGIN ISOLATION LEVEL SNAPSHOT".to_string(),
                format!("SELECT high_bid FROM auctions WHERE id = {item}"),
                format!(
                    "UPDATE auctions SET high_bid = {amount}, bids = bids + 1 WHERE id = {item} AND high_bid < {amount}"
                ),
                format!(
                    "INSERT INTO bids (id, auction_id, bidder, amount) VALUES ({bid_id}, {item}, {}, {amount})",
                    self.bidder
                ),
                "COMMIT".to_string(),
            ]
        } else {
            match rng.gen_range(0..2) {
                0 => vec![format!(
                    "SELECT id, high_bid, bids FROM auctions WHERE id = {item}"
                )],
                _ => vec![format!(
                    "SELECT COUNT(*) FROM bids WHERE auction_id = {item}"
                )],
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn bids_are_transactions_browses_are_not() {
        let mut a = Auction::new(100, 1.0, 7);
        let mut rng = DetRng::seed_from_u64(8);
        assert_eq!(a.next_tx(&mut rng).len(), 5);
        let mut b = Auction::new(100, 0.0, 7);
        assert_eq!(b.next_tx(&mut rng).len(), 1);
    }

    #[test]
    fn hot_items_receive_disproportionate_bids() {
        let mut a = Auction::new(1000, 1.0, 7);
        let mut rng = DetRng::seed_from_u64(9);
        let hot = (0..500)
            .filter(|_| {
                let tx = a.next_tx(&mut rng);
                // Parse "WHERE id = {item}" from the read.
                let item: i64 = tx[1]
                    .rsplit('=')
                    .next()
                    .unwrap()
                    .trim()
                    .parse()
                    .unwrap();
                item < a.hot_items
            })
            .count();
        assert!(hot > 200, "hot bids {hot}");
    }
}
