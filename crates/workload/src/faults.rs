//! Fault schedules (§5.1: benchmarks "could integrate fault injection").
//!
//! The paper's field observation (§2.2): "on average, one fatal failure
//! (software or hardware) occurs per day per 200 processors". A schedule
//! draws exponential inter-failure times at a configurable multiple of that
//! rate (virtual hours are cheap) and pairs each crash with a repair delay.
//!
//! Beyond clean crashes, [`GrayFaultSchedule`] draws *gray* episodes from
//! the same Poisson machinery: brownouts (a node slows down but stays
//! alive — §4.1.3's failing RAID battery) and flaky links (loss,
//! duplication, jitter spikes without severing the link). These are the
//! failures §5.1 says evaluations never inject.

use replimid_det::DetRng;
use replimid_simnet::{dur, LinkFault, SimTime};

/// One planned fault.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct Fault {
    /// Which node (index into the caller's node list).
    pub node: usize,
    pub crash_at: SimTime,
    pub restart_at: SimTime,
}

/// The paper's observed base rate: 1 failure / day / 200 processors,
/// i.e. per-node MTTF of 200 days, expressed in microseconds.
pub const PAPER_MTTF_US_PER_NODE: f64 = 200.0 * 86_400.0 * 1e6;

#[derive(Debug, Clone)]
pub struct FaultSchedule {
    pub faults: Vec<Fault>,
}

impl FaultSchedule {
    /// Draw a Poisson fault process over `nodes` nodes for `horizon_us` of
    /// virtual time. `accel` multiplies the paper's base failure rate
    /// (virtual campaigns compress months into simulated minutes).
    /// `mttr_us` is the mean repair time (exponential).
    pub fn poisson(
        rng: &mut DetRng,
        nodes: usize,
        horizon_us: u64,
        accel: f64,
        mttr_us: u64,
    ) -> Self {
        let mut faults = Vec::new();
        let per_node_rate = accel / PAPER_MTTF_US_PER_NODE; // failures per µs
        for node in 0..nodes {
            let mut t = 0.0f64;
            loop {
                // Exponential inter-arrival.
                let u: f64 = rng.gen::<f64>().max(1e-12);
                t += -u.ln() / per_node_rate;
                if t >= horizon_us as f64 {
                    break;
                }
                let crash_at = SimTime(t as u64);
                let ru: f64 = rng.gen::<f64>().max(1e-12);
                let repair = (-ru.ln() * mttr_us as f64) as u64;
                let restart_at = crash_at + repair.max(dur::millis(50));
                faults.push(Fault { node, crash_at, restart_at });
                t = restart_at.micros() as f64;
            }
        }
        faults.sort_by_key(|f| f.crash_at);
        FaultSchedule { faults }
    }

    /// A single planned crash/restart (the building block of targeted
    /// failover experiments).
    pub fn single(node: usize, crash_at: SimTime, down_for_us: u64) -> Self {
        FaultSchedule {
            faults: vec![Fault { node, crash_at, restart_at: crash_at + down_for_us }],
        }
    }

    pub fn is_empty(&self) -> bool {
        self.faults.is_empty()
    }

    pub fn len(&self) -> usize {
        self.faults.len()
    }

    /// Drop faults that would put more than `max_concurrent` nodes down at
    /// once. An unconstrained Poisson draw can (and at high acceleration
    /// does) take every replica down simultaneously, silently turning an
    /// availability campaign into a permanent quorum loss; campaigns that
    /// want to measure *degradation* rather than total outage cap the
    /// overlap. Purely a deterministic post-process: the RNG stream behind
    /// the schedule is unchanged.
    pub fn capped(mut self, max_concurrent: usize) -> Self {
        let mut kept: Vec<Fault> = Vec::new();
        // Restart times of kept faults still in progress (sorted walk over
        // crash times keeps this correct).
        let mut active: Vec<SimTime> = Vec::new();
        for f in self.faults {
            active.retain(|&r| r > f.crash_at);
            if active.len() < max_concurrent {
                active.push(f.restart_at);
                kept.push(f);
            }
        }
        self.faults = kept;
        self
    }

    /// The largest number of faults simultaneously in progress.
    pub fn max_concurrent(&self) -> usize {
        let mut best = 0;
        for f in &self.faults {
            let overlapping = self
                .faults
                .iter()
                .filter(|g| g.crash_at <= f.crash_at && g.restart_at > f.crash_at)
                .count();
            best = best.max(overlapping);
        }
        best
    }
}

/// What a gray episode does to its victim.
#[derive(Debug, Clone, Copy, PartialEq)]
pub enum GrayKind {
    /// The node's service times stretch by this factor; it keeps answering.
    Brownout { factor: f64 },
    /// The node's links lose/duplicate/delay messages without dropping.
    FlakyLink { fault: LinkFault },
}

/// One planned gray-failure episode.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct GrayFault {
    /// Which node (index into the caller's node list).
    pub node: usize,
    pub start: SimTime,
    pub end: SimTime,
    pub kind: GrayKind,
}

/// Severity knobs for a gray-failure campaign.
#[derive(Debug, Clone, Copy)]
pub struct GraySpec {
    /// Multiplier on the paper's base failure rate (like `poisson`'s).
    pub accel: f64,
    /// Mean episode length (exponential), floored at `min_episode_us`.
    pub mean_episode_us: u64,
    pub min_episode_us: u64,
    /// Fraction of episodes that are brownouts (the rest are flaky links).
    pub brownout_ratio: f64,
    /// Brownout severity drawn uniformly from this range.
    pub brownout_factor: (f64, f64),
    /// Severity used for flaky-link episodes.
    pub link: LinkFault,
}

impl Default for GraySpec {
    fn default() -> Self {
        GraySpec {
            accel: 1.0,
            mean_episode_us: dur::secs(2),
            min_episode_us: dur::millis(200),
            brownout_ratio: 0.5,
            brownout_factor: (4.0, 10.0),
            link: LinkFault::flaky(),
        }
    }
}

/// Gray episodes drawn from the same per-node Poisson process as
/// [`FaultSchedule::poisson`].
#[derive(Debug, Clone)]
pub struct GrayFaultSchedule {
    pub faults: Vec<GrayFault>,
}

impl GrayFaultSchedule {
    pub fn poisson(rng: &mut DetRng, nodes: usize, horizon_us: u64, spec: GraySpec) -> Self {
        let mut faults = Vec::new();
        let per_node_rate = spec.accel / PAPER_MTTF_US_PER_NODE;
        for node in 0..nodes {
            let mut t = 0.0f64;
            loop {
                let u: f64 = rng.gen::<f64>().max(1e-12);
                t += -u.ln() / per_node_rate;
                if t >= horizon_us as f64 {
                    break;
                }
                let start = SimTime(t as u64);
                let du: f64 = rng.gen::<f64>().max(1e-12);
                let len = ((-du.ln() * spec.mean_episode_us as f64) as u64).max(spec.min_episode_us);
                let end = start + len;
                let kind = if rng.gen::<f64>() < spec.brownout_ratio {
                    let (lo, hi) = spec.brownout_factor;
                    GrayKind::Brownout { factor: lo + rng.gen::<f64>() * (hi - lo).max(0.0) }
                } else {
                    GrayKind::FlakyLink { fault: spec.link }
                };
                faults.push(GrayFault { node, start, end, kind });
                t = end.micros() as f64;
            }
        }
        faults.sort_by_key(|f| (f.start, f.node));
        GrayFaultSchedule { faults }
    }

    /// A single planned episode (targeted tests).
    pub fn single(node: usize, start: SimTime, len_us: u64, kind: GrayKind) -> Self {
        GrayFaultSchedule {
            faults: vec![GrayFault { node, start, end: start + len_us, kind }],
        }
    }

    pub fn is_empty(&self) -> bool {
        self.faults.is_empty()
    }

    pub fn len(&self) -> usize {
        self.faults.len()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn paper_rate_reproduces_one_per_day_per_200() {
        let mut rng = DetRng::seed_from_u64(10);
        // 200 nodes for one simulated day at the paper's base rate.
        let s = FaultSchedule::poisson(&mut rng, 200, dur::hours(24), 1.0, dur::minutes(10));
        // Expected ~1 failure; accept a wide Poisson band.
        assert!(s.len() <= 6, "got {}", s.len());
    }

    #[test]
    fn acceleration_scales_counts() {
        let mut rng = DetRng::seed_from_u64(11);
        let slow = FaultSchedule::poisson(&mut rng, 10, dur::hours(1), 100.0, dur::minutes(1));
        let mut rng = DetRng::seed_from_u64(11);
        let fast = FaultSchedule::poisson(&mut rng, 10, dur::hours(1), 10_000.0, dur::minutes(1));
        assert!(fast.len() > slow.len() * 10, "{} vs {}", fast.len(), slow.len());
    }

    #[test]
    fn cap_bounds_concurrent_faults() {
        let mut rng = DetRng::seed_from_u64(13);
        // Aggressive acceleration + long repairs: plenty of overlap, and
        // with 5 nodes the uncapped draw takes everything down at once.
        let s = FaultSchedule::poisson(&mut rng, 5, dur::minutes(10), 3_000_000.0, dur::minutes(1));
        assert!(s.max_concurrent() >= 3, "premise: uncapped overlap ({})", s.max_concurrent());
        let total = s.len();
        let capped = s.capped(2);
        assert!(capped.max_concurrent() <= 2, "cap violated: {}", capped.max_concurrent());
        assert!(!capped.is_empty() && capped.len() < total, "cap dropped some faults");
        for f in &capped.faults {
            assert!(f.restart_at > f.crash_at);
        }
    }

    #[test]
    fn cap_is_a_noop_when_never_exceeded() {
        let s = FaultSchedule::single(0, SimTime(1_000), dur::millis(100));
        let before = s.faults.clone();
        assert_eq!(s.capped(1).faults, before);
    }

    #[test]
    fn gray_schedule_draws_both_kinds_deterministically() {
        let draw = || {
            let mut rng = DetRng::seed_from_u64(21);
            GrayFaultSchedule::poisson(
                &mut rng,
                8,
                dur::minutes(5),
                GraySpec { accel: 500_000.0, ..GraySpec::default() },
            )
        };
        let s = draw();
        assert!(s.len() >= 4, "got {}", s.len());
        let brownouts = s
            .faults
            .iter()
            .filter(|f| matches!(f.kind, GrayKind::Brownout { .. }))
            .count();
        assert!(brownouts > 0 && brownouts < s.len(), "both kinds present");
        for f in &s.faults {
            assert!(f.end > f.start);
            assert!(f.start.micros() < dur::minutes(5));
            if let GrayKind::Brownout { factor } = f.kind {
                assert!((4.0..=10.0).contains(&factor), "factor {factor}");
            }
        }
        // Sorted and same-seed reproducible.
        assert!(s.faults.windows(2).all(|w| w[0].start <= w[1].start));
        assert_eq!(s.faults, draw().faults);
    }

    #[test]
    fn restarts_follow_crashes() {
        let mut rng = DetRng::seed_from_u64(12);
        let s = FaultSchedule::poisson(&mut rng, 5, dur::hours(2), 50_000.0, dur::minutes(5));
        assert!(!s.is_empty());
        for f in &s.faults {
            assert!(f.restart_at > f.crash_at);
        }
        // Sorted by crash time.
        assert!(s.faults.windows(2).all(|w| w[0].crash_at <= w[1].crash_at));
    }
}
