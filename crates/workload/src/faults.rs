//! Fault schedules (§5.1: benchmarks "could integrate fault injection").
//!
//! The paper's field observation (§2.2): "on average, one fatal failure
//! (software or hardware) occurs per day per 200 processors". A schedule
//! draws exponential inter-failure times at a configurable multiple of that
//! rate (virtual hours are cheap) and pairs each crash with a repair delay.

use replimid_det::DetRng;
use replimid_simnet::{dur, SimTime};

/// One planned fault.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct Fault {
    /// Which node (index into the caller's node list).
    pub node: usize,
    pub crash_at: SimTime,
    pub restart_at: SimTime,
}

/// The paper's observed base rate: 1 failure / day / 200 processors,
/// i.e. per-node MTTF of 200 days, expressed in microseconds.
pub const PAPER_MTTF_US_PER_NODE: f64 = 200.0 * 86_400.0 * 1e6;

#[derive(Debug, Clone)]
pub struct FaultSchedule {
    pub faults: Vec<Fault>,
}

impl FaultSchedule {
    /// Draw a Poisson fault process over `nodes` nodes for `horizon_us` of
    /// virtual time. `accel` multiplies the paper's base failure rate
    /// (virtual campaigns compress months into simulated minutes).
    /// `mttr_us` is the mean repair time (exponential).
    pub fn poisson(
        rng: &mut DetRng,
        nodes: usize,
        horizon_us: u64,
        accel: f64,
        mttr_us: u64,
    ) -> Self {
        let mut faults = Vec::new();
        let per_node_rate = accel / PAPER_MTTF_US_PER_NODE; // failures per µs
        for node in 0..nodes {
            let mut t = 0.0f64;
            loop {
                // Exponential inter-arrival.
                let u: f64 = rng.gen::<f64>().max(1e-12);
                t += -u.ln() / per_node_rate;
                if t >= horizon_us as f64 {
                    break;
                }
                let crash_at = SimTime(t as u64);
                let ru: f64 = rng.gen::<f64>().max(1e-12);
                let repair = (-ru.ln() * mttr_us as f64) as u64;
                let restart_at = crash_at + repair.max(dur::millis(50));
                faults.push(Fault { node, crash_at, restart_at });
                t = restart_at.micros() as f64;
            }
        }
        faults.sort_by_key(|f| f.crash_at);
        FaultSchedule { faults }
    }

    /// A single planned crash/restart (the building block of targeted
    /// failover experiments).
    pub fn single(node: usize, crash_at: SimTime, down_for_us: u64) -> Self {
        FaultSchedule {
            faults: vec![Fault { node, crash_at, restart_at: crash_at + down_for_us }],
        }
    }

    pub fn is_empty(&self) -> bool {
        self.faults.is_empty()
    }

    pub fn len(&self) -> usize {
        self.faults.len()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn paper_rate_reproduces_one_per_day_per_200() {
        let mut rng = DetRng::seed_from_u64(10);
        // 200 nodes for one simulated day at the paper's base rate.
        let s = FaultSchedule::poisson(&mut rng, 200, dur::hours(24), 1.0, dur::minutes(10));
        // Expected ~1 failure; accept a wide Poisson band.
        assert!(s.len() <= 6, "got {}", s.len());
    }

    #[test]
    fn acceleration_scales_counts() {
        let mut rng = DetRng::seed_from_u64(11);
        let slow = FaultSchedule::poisson(&mut rng, 10, dur::hours(1), 100.0, dur::minutes(1));
        let mut rng = DetRng::seed_from_u64(11);
        let fast = FaultSchedule::poisson(&mut rng, 10, dur::hours(1), 10_000.0, dur::minutes(1));
        assert!(fast.len() > slow.len() * 10, "{} vs {}", fast.len(), slow.len());
    }

    #[test]
    fn restarts_follow_crashes() {
        let mut rng = DetRng::seed_from_u64(12);
        let s = FaultSchedule::poisson(&mut rng, 5, dur::hours(2), 50_000.0, dur::minutes(5));
        assert!(!s.is_empty());
        for f in &s.faults {
            assert!(f.restart_at > f.crash_at);
        }
        // Sorted by crash time.
        assert!(s.faults.windows(2).all(|w| w[0].crash_at <= w[1].crash_at));
    }
}
