//! Open-loop heavy-traffic driver (§5.1: real front-ends do not wait).
//!
//! Every other driver in this repository is *closed-loop*: a session issues
//! a request, waits for the reply, thinks, repeats. Closed loops are
//! self-clocking — when the cluster slows down, the offered load politely
//! slows down with it, which hides exactly the overload behaviour a
//! management operation (add a replica, drain one, roll the fleet) causes
//! in production. An *open-loop* driver decouples arrivals from
//! completions: requests arrive on their own Poisson (or diurnally
//! modulated) clock whether or not the cluster is keeping up, a bounded
//! admission stage keeps at most `max_inflight` requests outstanding, a
//! bounded queue absorbs bursts, and everything past the queue is **shed
//! and counted** — overload is observable instead of absorbed.
//!
//! Measurement model per request:
//!
//! * *queue wait* — arrival → dispatch (recorded as [`Stage::QueueWait`]);
//! * *service* — dispatch → reply;
//! * *sojourn* — arrival → final outcome, queue and retries included.
//!
//! Retries never block the arrival clock (the closed-loop assumption this
//! module exists to break): a retryable failure is re-enqueued at the tail
//! of the admission queue as a fresh arrival, counted in
//! [`OpenLoopMetrics::retries_enqueued`], and subject to the same shed
//! bound as any other arrival.
//!
//! Everything is deterministic from `OpenLoopConfig::seed`: the driver owns
//! a private [`DetRng`] (the arrival stream must not perturb — or be
//! perturbed by — any other actor's randomness), all state lives in
//! `Vec`/`VecDeque`/index maps, and per-second series are indexed by
//! virtual time.

use std::collections::VecDeque;

use replimid_core::metrics::Histogram;
use replimid_core::msg::{AdminCmd, ClientRequest, Msg, ReplyBody, SessionId};
use replimid_core::trace::{Stage, TraceSink};
use replimid_core::Cluster;
use replimid_det::DetRng;
use replimid_simnet::{Actor, Ctx, NodeId, SimTime};

/// When the next request arrives: the open-loop clock.
#[derive(Debug, Clone, Copy, PartialEq)]
pub enum ArrivalProcess {
    /// Homogeneous Poisson arrivals at `rate_per_sec` (exponential
    /// interarrival gaps, drawn by inversion — one RNG draw per arrival).
    Poisson { rate_per_sec: f64 },
    /// Inhomogeneous Poisson with a sinusoidal diurnal envelope: the rate
    /// swings between `base_per_sec` (trough) and `peak_per_sec` (peak)
    /// over `period_us`, starting at the trough. Drawn by thinning against
    /// the peak rate.
    Diurnal { base_per_sec: f64, peak_per_sec: f64, period_us: u64 },
}

impl ArrivalProcess {
    /// Instantaneous arrival rate (per second) at virtual time `t_us`.
    pub fn rate_at(&self, t_us: u64) -> f64 {
        match *self {
            ArrivalProcess::Poisson { rate_per_sec } => rate_per_sec,
            ArrivalProcess::Diurnal { base_per_sec, peak_per_sec, period_us } => {
                let phase = (t_us % period_us.max(1)) as f64 / period_us.max(1) as f64;
                base_per_sec
                    + (peak_per_sec - base_per_sec)
                        * 0.5
                        * (1.0 - (2.0 * std::f64::consts::PI * phase).cos())
            }
        }
    }

    /// The envelope's maximum rate (the thinning majorant).
    pub fn peak_rate(&self) -> f64 {
        match *self {
            ArrivalProcess::Poisson { rate_per_sec } => rate_per_sec,
            ArrivalProcess::Diurnal { base_per_sec, peak_per_sec, .. } => {
                peak_per_sec.max(base_per_sec)
            }
        }
    }

    /// Absolute virtual time of the next arrival strictly after `t_us`.
    /// Poisson consumes exactly one RNG draw per arrival; the diurnal
    /// process draws candidate arrivals at the peak rate and thins them to
    /// the instantaneous rate (Lewis–Shedler).
    pub fn next_arrival_us(&self, t_us: u64, rng: &mut DetRng) -> u64 {
        let peak = self.peak_rate().max(1e-9);
        let mut t = t_us as f64;
        loop {
            let u: f64 = rng.gen::<f64>().max(1e-12);
            t += -u.ln() / peak * 1e6;
            let thinned = match self {
                ArrivalProcess::Poisson { .. } => false,
                ArrivalProcess::Diurnal { .. } => rng.gen::<f64>() * peak > self.rate_at(t as u64),
            };
            if !thinned {
                return (t as u64).max(t_us + 1);
            }
        }
    }
}

#[derive(Debug, Clone)]
pub struct OpenLoopConfig {
    /// First session id; the driver owns `max_inflight` consecutive ids
    /// (one per in-flight slot — a slot's session is reused sequentially).
    pub first_session: u64,
    /// The middleware every request goes to.
    pub middleware: NodeId,
    pub arrivals: ArrivalProcess,
    /// Private RNG seed for the arrival stream and read-key choices.
    pub seed: u64,
    /// Bounded admission: at most this many requests outstanding.
    pub max_inflight: usize,
    /// Bounded wait queue ahead of admission; arrivals (and re-enqueued
    /// retries) past this bound are shed and counted, never buffered.
    pub queue_max: usize,
    /// Writes per thousand arrivals; the rest are point reads.
    pub write_permille: u32,
    /// Reads pick uniformly from keys `[0, read_keys)` of `table`
    /// (preloaded by the micro schema).
    pub read_keys: usize,
    /// Table point reads select from.
    pub table: String,
    /// Table writes insert into. Defaults to `table`; experiments that
    /// run long enough for table growth to matter point it at a separate
    /// write-only table, so read cost (a scan in this engine) stays
    /// constant over the run instead of climbing with every insert.
    pub write_table: String,
    /// Writes insert fresh keys `insert_base + n` (`n` = write counter):
    /// unique keys make "every acknowledged write is present" checkable.
    pub insert_base: i64,
    /// Give up on an in-flight request after this long: the slot is freed
    /// (late replies are discarded by sequence number) and the request is
    /// re-enqueued like any retryable failure.
    pub request_timeout_us: u64,
    /// Retry budget per request. Retries are new arrivals — they queue at
    /// the tail and never block the arrival clock.
    pub max_retries: u32,
    /// Stop generating arrivals at this virtual time (0 = never). In-flight
    /// and queued requests still finish: the tail drains.
    pub stop_at_us: u64,
}

impl OpenLoopConfig {
    /// Defaults for everything but the arrival process; `first_session`
    /// and `middleware` are filled in by [`add_open_loop`].
    pub fn new(arrivals: ArrivalProcess) -> Self {
        OpenLoopConfig {
            first_session: 1,
            middleware: NodeId(0),
            arrivals,
            seed: 7,
            max_inflight: 64,
            queue_max: 256,
            write_permille: 200,
            read_keys: 100,
            table: "bench".to_string(),
            write_table: "bench".to_string(),
            insert_base: 1_000_000,
            request_timeout_us: 1_000_000,
            max_retries: 3,
            stop_at_us: 0,
        }
    }
}

/// Aggregated open-loop measurements. Per-second series are indexed by
/// virtual second (index 0 = `[0s, 1s)`), extended on demand.
#[derive(Debug, Clone, Default)]
pub struct OpenLoopMetrics {
    /// Requests the arrival process generated (sheds included, retries not).
    pub arrivals: u64,
    /// Arrivals dropped because queue and in-flight bounds were both full —
    /// the overload signal a closed loop absorbs silently.
    pub shed: u64,
    /// Requests dispatched to the middleware (retries included).
    pub dispatched: u64,
    /// Requests that completed successfully.
    pub completed_ok: u64,
    /// Requests that failed terminally (non-retryable error, or the retry
    /// budget ran out).
    pub completed_err: u64,
    /// Retryable failures re-enqueued as fresh arrivals.
    pub retries_enqueued: u64,
    /// Requests whose retry budget ran out.
    pub retry_exhausted: u64,
    /// In-flight requests that hit `request_timeout_us`.
    pub timeouts: u64,
    /// Largest queue depth ever observed.
    pub queue_peak: usize,
    /// Arrival → final-outcome latency (queue and retries included).
    pub sojourn: Histogram,
    /// Arrival → dispatch wait (zero when a slot was free on arrival).
    pub queue_wait: Histogram,
    /// Dispatch → reply (per attempt).
    pub service: Histogram,
    /// Completions per virtual second (successes only).
    pub per_sec_completed: Vec<u64>,
    pub per_sec_arrivals: Vec<u64>,
    pub per_sec_shed: Vec<u64>,
    /// Per-second sojourn histograms of successful completions, for
    /// windowed p99s (dip depth / p99 inflation around a management op).
    pub per_sec_sojourn: Vec<Histogram>,
    /// Keys of acknowledged-committed inserts: the zero-committed-loss
    /// check is "every one of these exists on every surviving replica".
    pub acked_insert_keys: Vec<i64>,
    /// Queue-wait spans as [`Stage::QueueWait`] (driver-side sink).
    pub trace: TraceSink,
}

impl OpenLoopMetrics {
    /// Successful completions per second over `[from_s, to_s)`.
    pub fn completed_in(&self, from_s: usize, to_s: usize) -> u64 {
        self.per_sec_completed
            .iter()
            .skip(from_s)
            .take(to_s.saturating_sub(from_s))
            .sum()
    }

    /// Sojourn quantile over the window `[from_s, to_s)` (0 if empty).
    pub fn window_quantile_us(&self, from_s: usize, to_s: usize, q: f64) -> u64 {
        let mut h = Histogram::new();
        for hist in self.per_sec_sojourn.iter().skip(from_s).take(to_s.saturating_sub(from_s)) {
            h.merge(hist);
        }
        h.quantile_us(q)
    }
}

/// One open-loop request as it moves arrival → queue → slot → outcome.
#[derive(Debug, Clone, Copy)]
struct OlRequest {
    /// Original arrival time — retries keep it, so sojourn is honest.
    arrived_us: u64,
    retries_left: u32,
    /// `Some(key)` = INSERT of that key; `None` = point read.
    write_key: Option<i64>,
    /// Read key (ignored for writes).
    read_key: usize,
}

#[derive(Debug, Clone, Copy)]
struct OlPending {
    req: OlRequest,
    sent_us: u64,
}

/// One in-flight slot: a session the driver reuses sequentially.
#[derive(Debug, Clone)]
struct OlSlot {
    session: u64,
    stmt_seq: u64,
    busy: Option<OlPending>,
    /// Monotone guard-timer generation (stale firings self-identify).
    epoch: u64,
}

const TAG_ARRIVAL: u64 = 0;

pub struct OpenLoopDriver {
    cfg: OpenLoopConfig,
    rng: DetRng,
    slots: Vec<OlSlot>,
    queue: VecDeque<OlRequest>,
    next_arrival_id: u64,
    next_write: i64,
    pub metrics: OpenLoopMetrics,
}

impl OpenLoopDriver {
    pub fn new(cfg: OpenLoopConfig) -> Self {
        let slots = (0..cfg.max_inflight.max(1))
            .map(|i| OlSlot {
                session: cfg.first_session + i as u64,
                stmt_seq: 0,
                busy: None,
                epoch: 0,
            })
            .collect();
        let rng = DetRng::seed_from_u64(cfg.seed);
        let next_write = cfg.insert_base;
        OpenLoopDriver {
            cfg,
            rng,
            slots,
            queue: VecDeque::new(),
            next_arrival_id: 0,
            next_write,
            metrics: OpenLoopMetrics::default(),
        }
    }

    fn bump(series: &mut Vec<u64>, sec: usize) {
        if series.len() <= sec {
            series.resize(sec + 1, 0);
        }
        series[sec] += 1;
    }

    /// Deterministic guard-timer tag for a slot (tag 0 is the arrival clock).
    fn guard_tag(&self, slot_idx: usize) -> u64 {
        1 + self.slots[slot_idx].epoch * self.slots.len() as u64 + slot_idx as u64
    }

    fn arm_guard(&mut self, ctx: &mut Ctx<'_, Msg>, slot_idx: usize) {
        self.slots[slot_idx].epoch += 1;
        let tag = self.guard_tag(slot_idx);
        ctx.set_timer(self.cfg.request_timeout_us, tag);
    }

    /// Admit, queue, or shed one arrival (fresh or re-enqueued retry).
    fn offer(&mut self, ctx: &mut Ctx<'_, Msg>, req: OlRequest) {
        let now = ctx.now().micros();
        if let Some(slot_idx) = self.slots.iter().position(|s| s.busy.is_none()) {
            self.dispatch(ctx, slot_idx, req);
        } else if self.queue.len() < self.cfg.queue_max {
            self.queue.push_back(req);
            self.metrics.queue_peak = self.metrics.queue_peak.max(self.queue.len());
        } else {
            self.metrics.shed += 1;
            Self::bump(&mut self.metrics.per_sec_shed, (now / 1_000_000) as usize);
        }
    }

    fn dispatch(&mut self, ctx: &mut Ctx<'_, Msg>, slot_idx: usize, req: OlRequest) {
        let now = ctx.now().micros();
        let wait = now - req.arrived_us;
        self.metrics.queue_wait.record(wait);
        self.metrics.trace.record_detached(Stage::QueueWait, req.arrived_us, now);
        let sql = match req.write_key {
            Some(k) => format!("INSERT INTO {} VALUES ({k}, 1)", self.cfg.write_table),
            None => format!("SELECT v FROM {} WHERE k = {}", self.cfg.table, req.read_key),
        };
        let slot = &mut self.slots[slot_idx];
        slot.stmt_seq += 1;
        slot.busy = Some(OlPending { req, sent_us: now });
        let request = ClientRequest {
            session: SessionId(slot.session),
            stmt_seq: slot.stmt_seq,
            trace: 0,
            sql,
        };
        self.metrics.dispatched += 1;
        ctx.send(self.cfg.middleware, Msg::Request(request));
        self.arm_guard(ctx, slot_idx);
    }

    /// The slot's attempt ended (reply or timeout). Settle the outcome,
    /// free the slot, and pull the next queued request into it.
    fn settle(&mut self, ctx: &mut Ctx<'_, Msg>, slot_idx: usize, outcome: Outcome) {
        let now = ctx.now().micros();
        let pending = self.slots[slot_idx].busy.take().expect("settle on idle slot");
        self.metrics.service.record(now - pending.sent_us);
        match outcome {
            Outcome::Ok => {
                self.metrics.completed_ok += 1;
                let sojourn = now - pending.req.arrived_us;
                self.metrics.sojourn.record(sojourn);
                let sec = (now / 1_000_000) as usize;
                Self::bump(&mut self.metrics.per_sec_completed, sec);
                if self.metrics.per_sec_sojourn.len() <= sec {
                    self.metrics.per_sec_sojourn.resize_with(sec + 1, Histogram::new);
                }
                self.metrics.per_sec_sojourn[sec].record(sojourn);
                if let Some(k) = pending.req.write_key {
                    self.metrics.acked_insert_keys.push(k);
                }
            }
            Outcome::Retryable => {
                if pending.req.retries_left > 0 {
                    let mut req = pending.req;
                    req.retries_left -= 1;
                    self.metrics.retries_enqueued += 1;
                    // A retry is a fresh arrival at the tail: it contends
                    // with real arrivals for the queue bound and can be
                    // shed like one. The arrival clock never waits for it.
                    self.offer(ctx, req);
                } else {
                    self.metrics.retry_exhausted += 1;
                    self.metrics.completed_err += 1;
                    self.metrics.sojourn.record(now - pending.req.arrived_us);
                }
            }
            Outcome::Fatal => {
                self.metrics.completed_err += 1;
                self.metrics.sojourn.record(now - pending.req.arrived_us);
            }
        }
        // The freed slot immediately serves the queue head.
        if self.slots[slot_idx].busy.is_none() {
            if let Some(next) = self.queue.pop_front() {
                self.dispatch(ctx, slot_idx, next);
            }
        }
    }

    fn on_arrival_tick(&mut self, ctx: &mut Ctx<'_, Msg>) {
        let now = ctx.now().micros();
        // Generate this arrival.
        let id = self.next_arrival_id;
        self.next_arrival_id += 1;
        self.metrics.arrivals += 1;
        Self::bump(&mut self.metrics.per_sec_arrivals, (now / 1_000_000) as usize);
        // Deterministic mix: the arrival counter decides read vs write (no
        // RNG draw, so the arrival clock's stream stays pure arrivals).
        let write = (id.wrapping_mul(1_000_003) % 1_000) < u64::from(self.cfg.write_permille);
        let req = OlRequest {
            arrived_us: now,
            retries_left: self.cfg.max_retries,
            write_key: if write {
                let k = self.next_write;
                self.next_write += 1;
                Some(k)
            } else {
                None
            },
            read_key: (id.wrapping_mul(1_000_003) / 1_000) as usize
                % self.cfg.read_keys.max(1),
        };
        self.offer(ctx, req);
        // Arm the next arrival (absolute time: no cumulative drift).
        if self.cfg.stop_at_us == 0 || now < self.cfg.stop_at_us {
            let at = self.cfg.arrivals.next_arrival_us(now, &mut self.rng);
            if self.cfg.stop_at_us == 0 || at < self.cfg.stop_at_us {
                ctx.set_timer_at(SimTime(at), TAG_ARRIVAL);
            }
        }
    }
}

enum Outcome {
    Ok,
    Retryable,
    Fatal,
}

impl Actor<Msg> for OpenLoopDriver {
    fn on_start(&mut self, ctx: &mut Ctx<'_, Msg>) {
        let at = self.cfg.arrivals.next_arrival_us(ctx.now().micros(), &mut self.rng);
        if self.cfg.stop_at_us == 0 || at < self.cfg.stop_at_us {
            ctx.set_timer_at(SimTime(at), TAG_ARRIVAL);
        }
    }

    fn on_message(&mut self, ctx: &mut Ctx<'_, Msg>, _from: NodeId, msg: Msg) {
        let Msg::Reply(reply) = msg else { return };
        let first = self.cfg.first_session;
        let idx = reply.session.0.wrapping_sub(first) as usize;
        if idx >= self.slots.len() {
            return;
        }
        if self.slots[idx].stmt_seq != reply.stmt_seq || self.slots[idx].busy.is_none() {
            return; // stale: a timed-out attempt answered late
        }
        let outcome = match reply.result {
            Ok(ReplyBody::Rows(_) | ReplyBody::Affected(_) | ReplyBody::Ack) => Outcome::Ok,
            Err(ref e) if e.is_retryable() => Outcome::Retryable,
            Err(_) => Outcome::Fatal,
        };
        self.settle(ctx, idx, outcome);
    }

    fn on_timer(&mut self, ctx: &mut Ctx<'_, Msg>, tag: u64) {
        if tag == TAG_ARRIVAL {
            self.on_arrival_tick(ctx);
            return;
        }
        let n = self.slots.len() as u64;
        let slot_idx = ((tag - 1) % n) as usize;
        if (tag - 1) / n != self.slots[slot_idx].epoch {
            return; // superseded guard
        }
        if self.slots[slot_idx].busy.is_some() {
            // Request-timeout guard fired with the attempt outstanding.
            self.metrics.timeouts += 1;
            self.settle(ctx, slot_idx, Outcome::Retryable);
        }
    }
}

/// Attach an open-loop driver to a built cluster; requests go to
/// `cluster.mw_nodes[mw]`, and the driver's session-id block is reserved
/// from the cluster's allocator so later clients cannot collide. Returns
/// the driver's node id.
pub fn add_open_loop(cluster: &mut Cluster, mw: usize, mut cfg: OpenLoopConfig) -> NodeId {
    cfg.middleware = cluster.mw_nodes[mw];
    cfg.first_session = cluster.alloc_sessions(cfg.max_inflight.max(1));
    cluster.sim.add_node(OpenLoopDriver::new(cfg))
}

/// Snapshot an attached driver's metrics.
pub fn open_loop_metrics(cluster: &mut Cluster, node: NodeId) -> OpenLoopMetrics {
    cluster.sim.with_actor::<OpenLoopDriver, _>(node, |d| d.metrics.clone())
}

/// End the sessions a finished driver holds open (the middleware keeps
/// per-session state until told otherwise — the session-leak lesson).
pub fn end_open_loop_sessions(cluster: &mut Cluster, mw: usize, driver: NodeId) {
    let (first, slots) = cluster
        .sim
        .with_actor::<OpenLoopDriver, _>(driver, |d| (d.cfg.first_session, d.slots.len()));
    let at = cluster.sim.now() + 1;
    let node = cluster.mw_nodes[mw];
    for i in 0..slots {
        cluster.sim.inject(
            at,
            node,
            Msg::Admin(AdminCmd::EndSession { session: SessionId(first + i as u64) }),
        );
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn poisson_rate_is_close_and_deterministic() {
        let p = ArrivalProcess::Poisson { rate_per_sec: 500.0 };
        let mut rng = DetRng::seed_from_u64(11);
        let mut t = 0u64;
        let mut n = 0u64;
        while t < 20_000_000 {
            t = p.next_arrival_us(t, &mut rng);
            n += 1;
        }
        let rate = n as f64 / 20.0;
        assert!((rate - 500.0).abs() < 25.0, "measured {rate}/s, wanted ~500/s");
        // Same seed, same stream.
        let mut rng2 = DetRng::seed_from_u64(11);
        let mut t2 = 0u64;
        for _ in 0..100 {
            t2 = p.next_arrival_us(t2, &mut rng2);
        }
        let mut rng3 = DetRng::seed_from_u64(11);
        let mut t3 = 0u64;
        for _ in 0..100 {
            t3 = p.next_arrival_us(t3, &mut rng3);
        }
        assert_eq!(t2, t3);
    }

    #[test]
    fn diurnal_rate_swings_between_base_and_peak() {
        let d = ArrivalProcess::Diurnal {
            base_per_sec: 100.0,
            peak_per_sec: 900.0,
            period_us: 10_000_000,
        };
        assert!((d.rate_at(0) - 100.0).abs() < 1e-6, "trough at phase 0");
        assert!((d.rate_at(5_000_000) - 900.0).abs() < 1e-6, "peak at half period");
        // Thinned arrivals: trough seconds see far fewer than peak seconds.
        let mut rng = DetRng::seed_from_u64(3);
        let mut per_sec = [0u64; 10];
        let mut t = 0u64;
        loop {
            t = d.next_arrival_us(t, &mut rng);
            if t >= 10_000_000 {
                break;
            }
            per_sec[(t / 1_000_000) as usize] += 1;
        }
        let trough = per_sec[0] + per_sec[9];
        let peak = per_sec[4] + per_sec[5];
        assert!(
            peak > trough * 3,
            "diurnal envelope not visible: trough {trough}, peak {peak}"
        );
    }

    #[test]
    fn window_quantile_merges_per_second_histograms() {
        let mut m = OpenLoopMetrics::default();
        m.per_sec_sojourn.resize_with(3, Histogram::new);
        m.per_sec_sojourn[0].record(100);
        m.per_sec_sojourn[1].record(1_000);
        m.per_sec_sojourn[2].record(10_000);
        assert!(m.window_quantile_us(0, 3, 0.99) >= 1_000);
        assert_eq!(m.window_quantile_us(3, 3, 0.99), 0);
        m.per_sec_completed = vec![5, 7, 9];
        assert_eq!(m.completed_in(0, 2), 12);
        assert_eq!(m.completed_in(1, 3), 16);
    }
}
